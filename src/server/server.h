// QueryServer: the multi-threaded HTTP/1.1 JSON front end over
// Engine::Run — the service boundary that turns the library into a
// deployable query endpoint.
//
// Routes (all JSON; error bodies are {"error": {code, message}}):
//   POST   /v1/query                 QuerySpec mirror (+ "dataset" id)
//                                    → Release JSON
//   POST   /v1/datasets              register path / inline transactions
//                                    / synthetic profile → {"dataset": id}
//   GET    /v1/datasets/:id/budget   Accountant ledger readback
//   DELETE /v1/datasets/:id          evict (in-flight queries unaffected)
//   GET    /v1/stats                 admission/overload counters + the
//                                    cost model's live calibration
//   GET    /healthz                  liveness + dataset count
//
// Per-request contract (tests/server_test.cc pins these down):
//   * Bounded work: body size ≤ max_body_bytes (413 otherwise), headers
//     ≤ 16 KiB (431), one wall-clock deadline bounds reading the
//     request (408 on mid-read expiry); the response write gets its own
//     equal grace, so a slow-but-successful query whose ε was already
//     committed is never dropped mid-write.
//   * Predictable failure: malformed JSON / unknown keys / invalid spec
//     → 400 with the validator's message; unknown dataset → 404; an
//     Accountant refusal → 429 with the ledger untouched (the refusal
//     happens before any noise is drawn, exactly as in-process).
//   * Served == in-process: a query answered over HTTP is bit-identical
//     to Engine::Run with the same dataset, spec, and seed — the wire
//     layer round-trips doubles losslessly and the server adds no
//     hidden state.
//   * Overload-safe: with admission configured (server/admission.h), a
//     query whose predicted latency blows the SLO or whose arrival
//     finds the worker queue full is refused IMMEDIATELY — 429 with
//     Retry-After and the predicted cost, ε ledger untouched — instead
//     of timing out after consuming a worker. Admitted queries carry a
//     deadline ("deadline_ms" envelope key, capped by
//     request_deadline_ms) propagated as a cooperative cancel token
//     into every mechanism scan: mid-scan expiry unwinds within one
//     shard-chunk, answers 408, and charges the full reservation
//     (fail-closed, engine/accountant.h).
//
// Concurrency: ONE epoll event-loop thread (server/event_loop.h) owns
// every connection fd — accepts, incremental reads, response flushes,
// and all per-connection timers. Only a COMPLETE parsed request is
// handed to the worker ThreadPool, so a parked keep-alive client (or a
// slow-writing one) costs a file descriptor, never a worker — the
// thread-per-connection model this replaced let an idle-client storm
// starve real queries out of the pool. Engine::Run inside a worker fans
// out over the global counting pool as usual. Budget integrity under
// contention is the Accountant's reserve/commit protocol — the server
// adds nothing and therefore can't break it (the 16-client hammer test
// checks ε conservation end to end).
//
// Query batching (core/batch_exec.h): with a batch window configured
// (--batch-window-us / PRIVBASIS_BATCH_WINDOW_US), concurrent admitted
// queries against the SAME dataset share their counting scans — each
// dataset's executor is wrapped in a BatchingCountExecutor whose fused
// scans merge exact counts before any noise draw, so every release
// stays bit-identical to its unbatched run at the same seed. ε is
// reserved and committed per query, never per batch.
#ifndef PRIVBASIS_SERVER_SERVER_H_
#define PRIVBASIS_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "common/annotations.h"
#include "common/net.h"
#include "common/thread_pool.h"
#include "core/batch_exec.h"
#include "server/admission.h"
#include "shard/remote.h"
#include "server/dataset_registry.h"
#include "server/event_loop.h"
#include "server/http.h"
#include "store/state_store.h"

namespace privbasis::server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; read the bound port back with port().
  uint16_t port = 0;
  /// Connection-handler threads; 0 = the PRIVBASIS_THREADS env knob.
  size_t num_threads = 0;
  /// Wall-clock budget for reading one request (and, separately, for
  /// writing its response).
  int64_t request_deadline_ms = 30'000;
  size_t max_body_bytes = 1024 * 1024;
  /// Requests served per keep-alive connection before Connection: close.
  size_t max_requests_per_connection = 1024;
  DatasetRegistry::Limits registry_limits;
  /// Durable state directory (store/state_store.h). Empty = ephemeral:
  /// no WAL, no snapshots, everything is lost on exit — the pre-existing
  /// behavior. Non-empty: the budget ledger and registered datasets
  /// survive kill -9; every route answers 503 until boot-time ledger
  /// replay finishes.
  std::string state_dir;
  /// When ledger writes reach disk (only meaningful with a state_dir).
  store::FsyncMode fsync_mode = store::FsyncMode::kCommit;
  /// Overload policy (server/admission.h): cost-model SLO shedding and
  /// the bounded accept queue. Defaults keep both off — the
  /// pre-existing unbounded behavior.
  AdmissionOptions admission;
  /// Shard-worker addresses ("host:port" or bare "port"), one per
  /// shard. Non-empty turns the server into a scatter-gather
  /// coordinator: every registered dataset is partitioned into
  /// |shard_workers| slices shipped to the privbasis_shardd processes,
  /// and queries count through them (shard/remote.h). Start() fails if
  /// any worker is unreachable. Results are bit-identical to serving
  /// locally; a worker dying mid-query fails that query fail-closed
  /// (full ε charge), never a partial count.
  std::vector<std::string> shard_workers;
  /// Same-dataset query batching (core/batch_exec.h): how long a batch
  /// leader waits for co-riders, in microseconds. 0 disables batching;
  /// −1 (the default) reads the PRIVBASIS_BATCH_WINDOW_US env knob
  /// (default 0 = off). Batching never changes results — fused scans
  /// merge exact counts before any noise draw.
  int64_t batch_window_us = -1;
  /// Queries per fused scan. 0 (the default) reads PRIVBASIS_MAX_BATCH
  /// (default 8); 1 disables batching.
  size_t max_batch = 0;
};

class QueryServer {
 public:
  explicit QueryServer(ServerOptions options = {});
  /// Stops if still running.
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Binds, listens, and starts the accept thread + worker pool. With a
  /// state_dir, recovery (WAL replay + snapshot reload) proceeds on a
  /// background thread while the socket already accepts — clients get
  /// 503 until WaitUntilReady() would return, never connection refused
  /// followed by an answer from an unreplayed ledger.
  Status Start();

  /// Blocks until recovery finishes (immediately when no state_dir).
  /// Returns the recovery status: after a failure the server stays up
  /// but refuses every route with 503 — an unverifiable ledger must not
  /// serve, and silently serving fresh-and-empty would be worse.
  Status WaitUntilReady();

  /// Stops accepting, waits for in-flight requests (bounded by their
  /// deadlines), and joins all threads. Idempotent.
  void Stop();

  /// The bound port (valid after Start()).
  uint16_t port() const { return port_; }
  const std::string& host() const { return options_.host; }

  /// Datasets can be pre-registered in process (tests, the server
  /// binary's --preload) or via POST /v1/datasets.
  DatasetRegistry& registry() { return registry_; }

  /// Monotone counters for smoke checks, /healthz, and /v1/stats.
  struct Counters {
    uint64_t connections = 0;
    uint64_t connections_shed = 0;  ///< requests shed 503 (queue full)
    uint64_t requests = 0;
    uint64_t queries_ok = 0;
    uint64_t queries_rejected = 0;  ///< non-2xx /v1/query responses
    // Admission breakdown (queries only; each query lands in exactly
    // one of admitted/shed_*, and every admitted query eventually lands
    // in completed or cancelled or counts as an engine rejection):
    uint64_t queries_admitted = 0;
    uint64_t queries_shed_predicted = 0;  ///< 429: predicted cost > SLO
    uint64_t queries_shed_queue = 0;      ///< 429: worker queue full
    uint64_t queries_cancelled = 0;       ///< 408: deadline fired mid-run
    uint64_t queries_completed = 0;       ///< 200 after admission
  };
  Counters counters() const;

  /// The admission controller (cost model calibration is readable for
  /// tests and /v1/stats).
  const AdmissionController& admission() const { return admission_; }

 private:
  enum class RecoveryState { kReady, kRecovering, kFailed };

  void RecoverState();
  /// Event-loop dispatch hook (loop thread): counts the request and
  /// hands Route() to the worker pool — or sheds with a 503 when the
  /// bounded queue is full. The response returns to the loop via
  /// CompleteRequest.
  void DispatchRequest(uint64_t conn_id, HttpRequest request);
  /// Renders the 400/408/413/431 for a protocol-level read failure —
  /// the same bodies the pre-event-loop per-request contract produced.
  HttpResponse ProtocolErrorResponse(HttpReadOutcome outcome) const;
  /// Pure request → response routing (no socket I/O), so tests can cover
  /// the routing table without a live connection if needed.
  HttpResponse Route(const HttpRequest& request);

  /// Registry attach hook: shards to the worker fleet (coordinator
  /// mode), then wraps the dataset's executor in a
  /// BatchingCountExecutor when batching is on.
  Status AttachExecutors(const std::string& id,
                         const std::shared_ptr<Dataset>& dataset);
  /// True once Start() resolved the batching knobs to an active config.
  bool BatchingEnabled() const {
    return batch_window_us_ > 0 && max_batch_ > 1;
  }

  /// Coordinator attach: partitions `dataset` into one slice per
  /// worker, ships the slices (LoadShard), and attaches a
  /// RemoteShardExecutor so its queries count through the fleet. A
  /// failure fails the registration — a dataset must not serve locally
  /// when the operator asked for process separation.
  Status ShardToWorkers(const std::string& id,
                        const std::shared_ptr<Dataset>& dataset);

  HttpResponse HandleQuery(const HttpRequest& request);
  HttpResponse HandleRegisterDataset(const HttpRequest& request);
  HttpResponse HandleBudget(const std::string& id);
  HttpResponse HandleEvict(const std::string& id);
  HttpResponse HandleHealth();
  HttpResponse HandleStats();

  ServerOptions options_;
  AdmissionController admission_;
  DatasetRegistry registry_;
  /// One persistent client per shard worker (empty = not a coordinator).
  std::vector<std::shared_ptr<ShardWorkerClient>> shard_workers_;
  net::Fd listen_fd_;
  uint16_t port_ = 0;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<EventLoop> loop_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  /// Batching knobs resolved against the env at Start().
  int64_t batch_window_us_ = 0;
  size_t max_batch_ = 8;
  std::shared_ptr<BatchStats> batch_stats_;
  /// Per-dataset batchers so HandleQuery can bracket Engine::Run with
  /// BeginQuery/EndQuery (the live in-flight signal that sizes rounds).
  mutable Mutex batchers_mu_;
  std::map<std::string, std::shared_ptr<BatchingCountExecutor>> batchers_
      PB_GUARDED_BY(batchers_mu_);

  std::unique_ptr<store::StateStore> store_;
  std::thread recovery_thread_;
  std::atomic<RecoveryState> recovery_state_{RecoveryState::kReady};
  Mutex recovery_mu_;
  CondVar recovery_cv_;
  Status recovery_error_ PB_GUARDED_BY(recovery_mu_);

  mutable Mutex mu_;
  Counters counters_ PB_GUARDED_BY(mu_);
};

/// Body for a non-2xx response from `status` (wire's error JSON).
HttpResponse ErrorResponse(const Status& status);

}  // namespace privbasis::server

#endif  // PRIVBASIS_SERVER_SERVER_H_
