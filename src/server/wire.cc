#include "server/wire.h"

#include <cmath>
#include <limits>
#include <string>

#include "engine/accountant.h"
#include "eval/release_io.h"

namespace privbasis::server {

Status CheckKeys(const json::Value::Object& obj,
                 std::initializer_list<const char*> allowed,
                 const char* what) {
  for (const auto& [key, value] : obj) {
    bool known = false;
    for (const char* name : allowed) {
      if (key == name) {
        known = true;
        break;
      }
    }
    if (!known) {
      return Status::InvalidArgument(std::string("unknown ") + what +
                                     " key \"" + key + "\"");
    }
  }
  return Status::OK();
}

namespace {

/// Field extraction helpers: absent key = keep the default; present key
/// must have the right type. Each returns the field Status so one bad
/// field names itself in the 400 body.
Status ReadDouble(const json::Value& obj, const char* key, double* out) {
  if (const json::Value* v = obj.Find(key)) {
    auto parsed = v->GetDouble();
    if (!parsed.ok()) {
      return Status::InvalidArgument(std::string("\"") + key + "\": " +
                                     parsed.status().message());
    }
    *out = *parsed;
  }
  return Status::OK();
}

Status ReadBool(const json::Value& obj, const char* key, bool* out) {
  if (const json::Value* v = obj.Find(key)) {
    auto parsed = v->GetBool();
    if (!parsed.ok()) {
      return Status::InvalidArgument(std::string("\"") + key + "\": " +
                                     parsed.status().message());
    }
    *out = *parsed;
  }
  return Status::OK();
}

template <typename T>
Status ReadUint(const json::Value& obj, const char* key, T* out) {
  if (const json::Value* v = obj.Find(key)) {
    auto parsed = v->GetUint();
    if (!parsed.ok()) {
      return Status::InvalidArgument(std::string("\"") + key + "\": " +
                                     parsed.status().message());
    }
    if (*parsed > std::numeric_limits<T>::max()) {
      return Status::InvalidArgument(std::string("\"") + key +
                                     "\": value out of range");
    }
    *out = static_cast<T>(*parsed);
  }
  return Status::OK();
}

Status ReadString(const json::Value& obj, const char* key,
                  std::string* out) {
  if (const json::Value* v = obj.Find(key)) {
    auto parsed = v->GetString();
    if (!parsed.ok()) {
      return Status::InvalidArgument(std::string("\"") + key + "\": " +
                                     parsed.status().message());
    }
    *out = std::move(*parsed);
  }
  return Status::OK();
}

json::Value PbOptionsToJson(const PrivBasisOptions& pb) {
  json::Value v;
  v.Set("alpha1", pb.alpha1);
  v.Set("alpha2", pb.alpha2);
  v.Set("alpha3", pb.alpha3);
  v.Set("eta", pb.eta);
  v.Set("single_basis_lambda_cap", pb.single_basis_lambda_cap);
  v.Set("max_basis_length", pb.max_basis_length);
  v.Set("monotonic_em", pb.monotonic_em);
  v.Set("naive_lambda2", pb.naive_lambda2);
  v.Set("lambda_cap", pb.lambda_cap);
  v.Set("fk1_support_hint", pb.fk1_support_hint);
  return v;
}

Status PbOptionsFromJson(const json::Value& v, PrivBasisOptions* pb) {
  PRIVBASIS_ASSIGN_OR_RETURN(const json::Value::Object* obj, v.GetObject());
  PRIVBASIS_RETURN_NOT_OK(CheckKeys(
      *obj,
      {"alpha1", "alpha2", "alpha3", "eta", "single_basis_lambda_cap",
       "max_basis_length", "monotonic_em", "naive_lambda2", "lambda_cap",
       "fk1_support_hint"},
      "pb option"));
  PRIVBASIS_RETURN_NOT_OK(ReadDouble(v, "alpha1", &pb->alpha1));
  PRIVBASIS_RETURN_NOT_OK(ReadDouble(v, "alpha2", &pb->alpha2));
  PRIVBASIS_RETURN_NOT_OK(ReadDouble(v, "alpha3", &pb->alpha3));
  PRIVBASIS_RETURN_NOT_OK(ReadDouble(v, "eta", &pb->eta));
  PRIVBASIS_RETURN_NOT_OK(ReadUint(v, "single_basis_lambda_cap",
                                   &pb->single_basis_lambda_cap));
  PRIVBASIS_RETURN_NOT_OK(
      ReadUint(v, "max_basis_length", &pb->max_basis_length));
  PRIVBASIS_RETURN_NOT_OK(ReadBool(v, "monotonic_em", &pb->monotonic_em));
  PRIVBASIS_RETURN_NOT_OK(ReadBool(v, "naive_lambda2", &pb->naive_lambda2));
  PRIVBASIS_RETURN_NOT_OK(ReadUint(v, "lambda_cap", &pb->lambda_cap));
  PRIVBASIS_RETURN_NOT_OK(
      ReadUint(v, "fk1_support_hint", &pb->fk1_support_hint));
  return Status::OK();
}

json::Value TfOptionsToJson(const TfOptions& tf) {
  json::Value v;
  v.Set("m", tf.m);
  v.Set("rho", tf.rho);
  v.Set("selection", tf.selection == TfOptions::Selection::kLaplaceNoise
                         ? "laplace"
                         : "em");
  v.Set("explicit_limit", tf.explicit_limit);
  return v;
}

Status TfOptionsFromJson(const json::Value& v, TfOptions* tf) {
  PRIVBASIS_ASSIGN_OR_RETURN(const json::Value::Object* obj, v.GetObject());
  PRIVBASIS_RETURN_NOT_OK(CheckKeys(
      *obj, {"m", "rho", "selection", "explicit_limit"}, "tf option"));
  PRIVBASIS_RETURN_NOT_OK(ReadUint(v, "m", &tf->m));
  PRIVBASIS_RETURN_NOT_OK(ReadDouble(v, "rho", &tf->rho));
  std::string selection;
  PRIVBASIS_RETURN_NOT_OK(ReadString(v, "selection", &selection));
  if (!selection.empty()) {
    if (selection == "em") {
      tf->selection = TfOptions::Selection::kExponentialMechanism;
    } else if (selection == "laplace") {
      tf->selection = TfOptions::Selection::kLaplaceNoise;
    } else {
      return Status::InvalidArgument(
          "\"selection\": expected \"em\" or \"laplace\", got \"" +
          selection + "\"");
    }
  }
  PRIVBASIS_RETURN_NOT_OK(
      ReadUint(v, "explicit_limit", &tf->explicit_limit));
  return Status::OK();
}

json::Value RuleOptionsToJson(const RuleOptions& rules) {
  json::Value v;
  v.Set("min_confidence", rules.min_confidence);
  v.Set("min_support", rules.min_support);
  v.Set("max_antecedent", rules.max_antecedent);
  return v;
}

Status RuleOptionsFromJson(const json::Value& v, RuleOptions* rules) {
  PRIVBASIS_ASSIGN_OR_RETURN(const json::Value::Object* obj, v.GetObject());
  PRIVBASIS_RETURN_NOT_OK(CheckKeys(
      *obj, {"min_confidence", "min_support", "max_antecedent"},
      "rules option"));
  PRIVBASIS_RETURN_NOT_OK(
      ReadDouble(v, "min_confidence", &rules->min_confidence));
  PRIVBASIS_RETURN_NOT_OK(ReadDouble(v, "min_support", &rules->min_support));
  PRIVBASIS_RETURN_NOT_OK(
      ReadUint(v, "max_antecedent", &rules->max_antecedent));
  return Status::OK();
}

/// null ↔ an unlimited budget's infinite remaining ε (JSON has no
/// spelling for infinity; see common/json.h).
json::Value EpsilonOrNull(double epsilon) {
  if (!std::isfinite(epsilon)) return json::Value(nullptr);
  return json::Value(epsilon);
}

Result<double> EpsilonFromJson(const json::Value& v) {
  if (v.is_null()) return std::numeric_limits<double>::infinity();
  return v.GetDouble();
}

}  // namespace

json::Value QuerySpecToJson(const QuerySpec& spec) {
  json::Value v;
  v.Set("method", QueryMethodName(spec.method));
  v.Set("k", spec.k);
  v.Set("epsilon", spec.epsilon);
  v.Set("seed", spec.seed);
  v.Set("theta", spec.theta);
  v.Set("sampling_rate", spec.sampling_rate);
  v.Set("label", spec.label);
  v.Set("rules", spec.derive_rules ? RuleOptionsToJson(spec.rule_options)
                                   : json::Value(nullptr));
  v.Set("pb", PbOptionsToJson(spec.pb));
  v.Set("tf", TfOptionsToJson(spec.tf));
  return v;
}

Result<QuerySpec> QuerySpecFromJson(const json::Value& value) {
  PRIVBASIS_ASSIGN_OR_RETURN(const json::Value::Object* obj,
                             value.GetObject());
  // "dataset" (the registry handle id) and "deadline_ms" (the server's
  // per-query deadline) are envelope keys, not part of the spec.
  PRIVBASIS_RETURN_NOT_OK(CheckKeys(
      *obj,
      {"dataset", "deadline_ms", "method", "k", "epsilon", "seed", "theta",
       "sampling_rate", "label", "rules", "pb", "tf"},
      "query"));

  QuerySpec spec;
  std::string method;
  PRIVBASIS_RETURN_NOT_OK(ReadString(value, "method", &method));
  if (!method.empty()) {
    if (method == "pb") {
      spec.method = QueryMethod::kPrivBasis;
    } else if (method == "tf") {
      spec.method = QueryMethod::kTruncatedFrequency;
    } else {
      return Status::InvalidArgument(
          "\"method\": expected \"pb\" or \"tf\", got \"" + method + "\"");
    }
  }
  PRIVBASIS_RETURN_NOT_OK(ReadUint(value, "k", &spec.k));
  PRIVBASIS_RETURN_NOT_OK(ReadDouble(value, "epsilon", &spec.epsilon));
  PRIVBASIS_RETURN_NOT_OK(ReadUint(value, "seed", &spec.seed));
  PRIVBASIS_RETURN_NOT_OK(ReadDouble(value, "theta", &spec.theta));
  PRIVBASIS_RETURN_NOT_OK(
      ReadDouble(value, "sampling_rate", &spec.sampling_rate));
  PRIVBASIS_RETURN_NOT_OK(ReadString(value, "label", &spec.label));
  if (const json::Value* rules = value.Find("rules");
      rules != nullptr && !rules->is_null()) {
    spec.derive_rules = true;
    PRIVBASIS_RETURN_NOT_OK(RuleOptionsFromJson(*rules, &spec.rule_options));
  }
  if (const json::Value* pb = value.Find("pb")) {
    PRIVBASIS_RETURN_NOT_OK(PbOptionsFromJson(*pb, &spec.pb));
  }
  if (const json::Value* tf = value.Find("tf")) {
    PRIVBASIS_RETURN_NOT_OK(TfOptionsFromJson(*tf, &spec.tf));
  }
  return spec;
}

json::Value ReleaseToJson(const Release& release) {
  json::Value v;
  v.Set("method", QueryMethodName(release.method));
  v.Set("itemsets", ReleaseItemsetsToJson(release.itemsets));
  json::Value::Array rules;
  rules.reserve(release.rules.size());
  for (const auto& rule : release.rules) {
    json::Value r;
    r.Set("antecedent", ItemsetToJson(rule.antecedent));
    r.Set("consequent", ItemsetToJson(rule.consequent));
    r.Set("support", rule.support);
    r.Set("confidence", rule.confidence);
    rules.emplace_back(std::move(r));
  }
  v.Set("rules", std::move(rules));
  v.Set("lambda", release.lambda);
  v.Set("lambda2", release.lambda2);
  json::Value::Array basis;
  basis.reserve(release.basis_set.Width());
  for (const Itemset& b : release.basis_set.bases()) {
    basis.push_back(ItemsetToJson(b));
  }
  v.Set("basis", std::move(basis));
  json::Value budget;
  budget.Set("requested", release.epsilon_requested);
  budget.Set("spent", release.epsilon_spent);
  budget.Set("spent_total", release.epsilon_spent_total);
  budget.Set("remaining", EpsilonOrNull(release.epsilon_remaining));
  v.Set("budget", std::move(budget));
  return v;
}

Result<Release> ReleaseFromJson(const json::Value& value) {
  PRIVBASIS_ASSIGN_OR_RETURN(const json::Value::Object* obj,
                             value.GetObject());
  PRIVBASIS_RETURN_NOT_OK(CheckKeys(
      *obj,
      {"method", "itemsets", "rules", "lambda", "lambda2", "basis",
       "budget"},
      "release"));
  Release release;
  std::string method;
  PRIVBASIS_RETURN_NOT_OK(ReadString(value, "method", &method));
  if (method == "tf") {
    release.method = QueryMethod::kTruncatedFrequency;
  } else if (method != "pb" && !method.empty()) {
    return Status::InvalidArgument("\"method\": unknown value \"" + method +
                                   "\"");
  }
  if (const json::Value* itemsets = value.Find("itemsets")) {
    PRIVBASIS_ASSIGN_OR_RETURN(release.itemsets,
                               ReleaseItemsetsFromJson(*itemsets));
  }
  if (const json::Value* rules = value.Find("rules")) {
    PRIVBASIS_ASSIGN_OR_RETURN(const json::Value::Array* array,
                               rules->GetArray());
    release.rules.reserve(array->size());
    for (const json::Value& r : *array) {
      // Rules are as strict as itemsets: all four keys, nothing else
      // (a typoed "confidnce" must fail, not silently zero the field).
      PRIVBASIS_ASSIGN_OR_RETURN(const json::Value::Object* rule_obj,
                                 r.GetObject());
      PRIVBASIS_RETURN_NOT_OK(CheckKeys(
          *rule_obj, {"antecedent", "consequent", "support", "confidence"},
          "rule"));
      AssociationRule rule;
      const json::Value* antecedent = r.Find("antecedent");
      const json::Value* consequent = r.Find("consequent");
      if (antecedent == nullptr || consequent == nullptr ||
          r.Find("support") == nullptr || r.Find("confidence") == nullptr) {
        return Status::InvalidArgument(
            "rule requires antecedent, consequent, support, confidence");
      }
      PRIVBASIS_ASSIGN_OR_RETURN(rule.antecedent,
                                 ItemsetFromJson(*antecedent));
      PRIVBASIS_ASSIGN_OR_RETURN(rule.consequent,
                                 ItemsetFromJson(*consequent));
      PRIVBASIS_RETURN_NOT_OK(ReadDouble(r, "support", &rule.support));
      PRIVBASIS_RETURN_NOT_OK(ReadDouble(r, "confidence", &rule.confidence));
      release.rules.push_back(std::move(rule));
    }
  }
  PRIVBASIS_RETURN_NOT_OK(ReadUint(value, "lambda", &release.lambda));
  PRIVBASIS_RETURN_NOT_OK(ReadUint(value, "lambda2", &release.lambda2));
  if (const json::Value* basis = value.Find("basis")) {
    PRIVBASIS_ASSIGN_OR_RETURN(const json::Value::Array* array,
                               basis->GetArray());
    for (const json::Value& b : *array) {
      PRIVBASIS_ASSIGN_OR_RETURN(Itemset itemset, ItemsetFromJson(b));
      release.basis_set.Add(std::move(itemset));
    }
  }
  if (const json::Value* budget = value.Find("budget")) {
    PRIVBASIS_RETURN_NOT_OK(
        ReadDouble(*budget, "requested", &release.epsilon_requested));
    PRIVBASIS_RETURN_NOT_OK(
        ReadDouble(*budget, "spent", &release.epsilon_spent));
    PRIVBASIS_RETURN_NOT_OK(
        ReadDouble(*budget, "spent_total", &release.epsilon_spent_total));
    if (const json::Value* remaining = budget->Find("remaining")) {
      PRIVBASIS_ASSIGN_OR_RETURN(release.epsilon_remaining,
                                 EpsilonFromJson(*remaining));
    }
  }
  return release;
}

json::Value StatusToJson(const Status& status) {
  json::Value error;
  error.Set("code", StatusCodeToString(status.code()));
  error.Set("message", status.message());
  json::Value v;
  v.Set("error", std::move(error));
  return v;
}

json::Value StatsToJson(const StatsSnapshot& stats) {
  json::Value body;
  json::Value queries;
  queries.Set("admitted", stats.queries_admitted);
  queries.Set("shed_predicted", stats.queries_shed_predicted);
  queries.Set("shed_queue", stats.queries_shed_queue);
  queries.Set("cancelled", stats.queries_cancelled);
  queries.Set("completed", stats.queries_completed);
  body.Set("queries", std::move(queries));
  json::Value connections;
  connections.Set("accepted", stats.connections);
  connections.Set("shed", stats.connections_shed);
  body.Set("connections", std::move(connections));
  json::Value admission;
  admission.Set("slo_ms", stats.slo_ms);
  admission.Set("max_queue_depth", stats.max_queue_depth);
  admission.Set("queue_depth", stats.queue_depth);
  admission.Set("ns_per_unit", stats.ns_per_unit);
  admission.Set("recent_query_ms", stats.recent_query_ms);
  body.Set("admission", std::move(admission));
  json::Value shards;
  shards.Set("workers", stats.shard_workers);
  shards.Set("fanout", stats.shard_fanout);
  body.Set("shards", std::move(shards));
  json::Value batching;
  batching.Set("window_us", stats.batch_window_us);
  batching.Set("max", stats.batch_max);
  batching.Set("batches", stats.batches);
  batching.Set("batched_queries", stats.batched_queries);
  batching.Set("scans_saved", stats.scans_saved);
  body.Set("batching", std::move(batching));
  return body;
}

Result<StatsSnapshot> StatsFromJson(const json::Value& value) {
  StatsSnapshot stats;
  PRIVBASIS_ASSIGN_OR_RETURN(const json::Value::Object* obj,
                             value.GetObject());
  PRIVBASIS_RETURN_NOT_OK(CheckKeys(
      *obj, {"queries", "connections", "admission", "shards", "batching"},
      "stats"));
  if (const json::Value* queries = value.Find("queries")) {
    PRIVBASIS_ASSIGN_OR_RETURN(const json::Value::Object* q,
                               queries->GetObject());
    PRIVBASIS_RETURN_NOT_OK(CheckKeys(
        *q, {"admitted", "shed_predicted", "shed_queue", "cancelled",
             "completed"},
        "stats query"));
    PRIVBASIS_RETURN_NOT_OK(
        ReadUint(*queries, "admitted", &stats.queries_admitted));
    PRIVBASIS_RETURN_NOT_OK(
        ReadUint(*queries, "shed_predicted", &stats.queries_shed_predicted));
    PRIVBASIS_RETURN_NOT_OK(
        ReadUint(*queries, "shed_queue", &stats.queries_shed_queue));
    PRIVBASIS_RETURN_NOT_OK(
        ReadUint(*queries, "cancelled", &stats.queries_cancelled));
    PRIVBASIS_RETURN_NOT_OK(
        ReadUint(*queries, "completed", &stats.queries_completed));
  }
  if (const json::Value* connections = value.Find("connections")) {
    PRIVBASIS_ASSIGN_OR_RETURN(const json::Value::Object* c,
                               connections->GetObject());
    PRIVBASIS_RETURN_NOT_OK(
        CheckKeys(*c, {"accepted", "shed"}, "stats connection"));
    PRIVBASIS_RETURN_NOT_OK(
        ReadUint(*connections, "accepted", &stats.connections));
    PRIVBASIS_RETURN_NOT_OK(
        ReadUint(*connections, "shed", &stats.connections_shed));
  }
  if (const json::Value* admission = value.Find("admission")) {
    PRIVBASIS_ASSIGN_OR_RETURN(const json::Value::Object* a,
                               admission->GetObject());
    PRIVBASIS_RETURN_NOT_OK(CheckKeys(
        *a,
        {"slo_ms", "max_queue_depth", "queue_depth", "ns_per_unit",
         "recent_query_ms"},
        "stats admission"));
    uint64_t slo_ms = 0;
    PRIVBASIS_RETURN_NOT_OK(ReadUint(*admission, "slo_ms", &slo_ms));
    stats.slo_ms = static_cast<int64_t>(slo_ms);
    PRIVBASIS_RETURN_NOT_OK(
        ReadUint(*admission, "max_queue_depth", &stats.max_queue_depth));
    PRIVBASIS_RETURN_NOT_OK(
        ReadUint(*admission, "queue_depth", &stats.queue_depth));
    PRIVBASIS_RETURN_NOT_OK(
        ReadDouble(*admission, "ns_per_unit", &stats.ns_per_unit));
    PRIVBASIS_RETURN_NOT_OK(
        ReadDouble(*admission, "recent_query_ms", &stats.recent_query_ms));
  }
  if (const json::Value* shards = value.Find("shards")) {
    PRIVBASIS_ASSIGN_OR_RETURN(const json::Value::Object* s,
                               shards->GetObject());
    PRIVBASIS_RETURN_NOT_OK(
        CheckKeys(*s, {"workers", "fanout"}, "stats shard"));
    PRIVBASIS_RETURN_NOT_OK(ReadUint(*shards, "workers",
                                     &stats.shard_workers));
    PRIVBASIS_RETURN_NOT_OK(ReadUint(*shards, "fanout",
                                     &stats.shard_fanout));
  }
  if (const json::Value* batching = value.Find("batching")) {
    PRIVBASIS_ASSIGN_OR_RETURN(const json::Value::Object* b,
                               batching->GetObject());
    PRIVBASIS_RETURN_NOT_OK(CheckKeys(
        *b, {"window_us", "max", "batches", "batched_queries", "scans_saved"},
        "stats batching"));
    uint64_t window_us = 0;
    PRIVBASIS_RETURN_NOT_OK(ReadUint(*batching, "window_us", &window_us));
    stats.batch_window_us = static_cast<int64_t>(window_us);
    PRIVBASIS_RETURN_NOT_OK(ReadUint(*batching, "max", &stats.batch_max));
    PRIVBASIS_RETURN_NOT_OK(ReadUint(*batching, "batches", &stats.batches));
    PRIVBASIS_RETURN_NOT_OK(
        ReadUint(*batching, "batched_queries", &stats.batched_queries));
    PRIVBASIS_RETURN_NOT_OK(
        ReadUint(*batching, "scans_saved", &stats.scans_saved));
  }
  return stats;
}

int HttpStatusForCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kFailedPrecondition:
      return 409;
    // A refused reservation is "payment required" in spirit; 429 is the
    // standard spelling clients retry-budget against.
    case StatusCode::kBudgetExhausted:
    case StatusCode::kResourceExhausted:
      return 429;
    case StatusCode::kIoError:
    case StatusCode::kInternal:
      return 500;
    // Recovering-after-restart refusal: retryable once ledger replay
    // finishes, so the standard "try again later" code.
    case StatusCode::kUnavailable:
      return 503;
    // A query whose deadline expired mid-run (or whose client-armed
    // token fired): the request timed out from the client's view.
    case StatusCode::kCancelled:
      return 408;
  }
  return 500;
}

}  // namespace privbasis::server
