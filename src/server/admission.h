// Cost-model admission control for the query server: predict each
// query's work BEFORE running it and refuse — immediately, cheaply, and
// without touching the ε ledger — the requests that would blow the
// latency objective or find the worker queue already full.
//
// Why a cost model and not just a queue bound: the mechanisms' cost
// spread is enormous (a k=5 query on a 6-transaction inline dataset vs
// k=400 with pair counting on kosarak differ by ~5 orders of
// magnitude), so a depth-only bound either sheds cheap queries that
// would have met their deadline or admits expensive ones that time out
// after consuming a worker for the full SLO. Predicting work from the
// spec plus the dataset's memoized statistics (both available in
// microseconds — Dataset::Stats() is cached) lets the server refuse
// exactly the requests it could not serve in time, with a 429 the
// client gets in milliseconds instead of a 408 it waits the whole
// deadline for.
//
// The model is deliberately coarse: per-mechanism work-unit formulas
// over (N, Σ|t|, |I|, k, m, sampling rate) capture the *relative* cost
// ordering, and an EWMA of observed ns-per-unit from completed queries
// calibrates the absolute scale at runtime. The default scale is seeded
// from the tracked bench trajectory (bench/trajectory/
// BENCH_baseline.json: engine_query_warm on the kosarak profile) so the
// very first prediction is the right order of magnitude; every
// completed query then tightens it. Predictions are conservative by
// design — an admitted query that runs long is bounded by deadline
// cancellation (engine/query.h cancel token), so admission errs toward
// admitting.
//
// ε safety: admission runs before QuerySpec validation even reserves
// budget — a shed query has charged nothing, drawn no noise, and can be
// retried verbatim. The decision is pure arithmetic on public
// statistics plus the spec, so it leaks nothing the release would not.
#ifndef PRIVBASIS_SERVER_ADMISSION_H_
#define PRIVBASIS_SERVER_ADMISSION_H_

#include <cstdint>

#include "common/annotations.h"
#include "data/dataset_stats.h"
#include "engine/query.h"

namespace privbasis::server {

/// Server-operator knobs (tools/privbasis_server.cc: --slo-ms,
/// --max-queue).
struct AdmissionOptions {
  /// Latency objective for one admitted query, in ms. A query whose
  /// predicted latency exceeds this is shed with 429 before any work.
  /// 0 disables cost-model shedding (queue-depth shedding remains).
  int64_t slo_ms = 0;
  /// Maximum pending (accepted but not yet running) connections in the
  /// worker pool before new arrivals are shed with 503. 0 = unbounded.
  size_t max_queue_depth = 0;
};

/// Why a request was (or was not) admitted.
enum class ShedReason {
  kNone,           ///< admitted
  kPredictedCost,  ///< predicted latency exceeds the SLO → 429
  /// Worker queue at max_queue_depth. At accept time any new connection
  /// is shed (503); at query time only queries that are ALSO expensive
  /// (predicted > SLO/2) are shed (429) — a query already holding a
  /// worker is the capacity, and shedding cheap ones too would collapse
  /// throughput under sustained overload.
  kQueueFull,
};

struct AdmissionDecision {
  bool admit = true;
  ShedReason reason = ShedReason::kNone;
  /// The model's latency prediction for this query (also returned in
  /// the shed body so the client can see why).
  double predicted_ms = 0.0;
  /// Suggested client backoff, seconds ≥ 1 (the Retry-After header).
  int64_t retry_after_s = 1;
};

/// Work-unit prediction + runtime ns-per-unit calibration. Thread-safe;
/// one instance per server.
class CostModel {
 public:
  /// Mechanism-aware work units for one query. Pure arithmetic on the
  /// memoized dataset statistics — never scans data, never draws noise.
  /// Units are arbitrary (ns-per-unit calibration absorbs the scale);
  /// only the relative ordering across specs matters.
  static double WorkUnits(const DatasetStats& stats, const QuerySpec& spec);

  /// Latency prediction at the current calibration.
  double PredictMs(double work_units) const;

  /// Feeds one completed query back into the EWMA calibration.
  void Observe(double work_units, double actual_ms);

  /// Current scale (exposed for /v1/stats and tests).
  double ns_per_unit() const;
  /// EWMA of observed per-query latency (drives Retry-After).
  double recent_query_ms() const;

 private:
  mutable Mutex mu_;
  /// Seeded from the tracked trajectory: the kosarak-profile
  /// engine_query_warm entry (~216 ms) over its ~3.8M predicted work
  /// units ≈ 57 ns/unit. Self-corrects from the first observation on.
  double ns_per_unit_ PB_GUARDED_BY(mu_) = 57.0;
  double recent_query_ms_ PB_GUARDED_BY(mu_) = 50.0;
};

/// The admission decision point: combines the cost model, the SLO, and
/// the live queue depth. Thread-safe.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options)
      : options_(options) {}

  const AdmissionOptions& options() const { return options_; }
  CostModel& model() { return model_; }
  const CostModel& model() const { return model_; }

  /// Decides one query given its predicted work and the current worker
  /// queue depth. Never blocks.
  AdmissionDecision Decide(double work_units, size_t queue_depth) const;

  /// True when a brand-new connection should be shed at accept time
  /// (queue-depth bound only; no spec is available yet).
  bool ShedConnection(size_t queue_depth) const {
    return options_.max_queue_depth > 0 &&
           queue_depth >= options_.max_queue_depth;
  }

  /// Backoff hint for queue-full sheds: roughly how long until the
  /// queue drains one slot, floored at 1 s.
  int64_t RetryAfterSeconds(size_t queue_depth) const;

 private:
  AdmissionOptions options_;
  CostModel model_;
};

}  // namespace privbasis::server

#endif  // PRIVBASIS_SERVER_ADMISSION_H_
