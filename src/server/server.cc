#include "server/server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <ctime>
#include <limits>
#include <utility>

#include "common/cancel.h"
#include "common/env.h"
#include "common/failpoint.h"
#include "engine/accountant.h"
#include "engine/engine.h"
#include "server/wire.h"
#include "shard/sharded_db.h"

namespace privbasis::server {

namespace {

/// "/v1/datasets/ds-3/budget" → {"ds-3", "budget"}; empty id = no match.
struct DatasetPath {
  std::string id;
  std::string tail;  // after the id, without the leading '/'
};

DatasetPath ParseDatasetPath(const std::string& target) {
  static constexpr std::string_view kPrefix = "/v1/datasets/";
  DatasetPath out;
  if (!target.starts_with(kPrefix)) return out;
  const std::string rest = target.substr(kPrefix.size());
  const size_t slash = rest.find('/');
  if (slash == std::string::npos) {
    out.id = rest;
  } else {
    out.id = rest.substr(0, slash);
    out.tail = rest.substr(slash + 1);
  }
  return out;
}

HttpResponse JsonResponse(int status, const json::Value& body) {
  HttpResponse response;
  response.status = status;
  response.body = body.Dump();
  return response;
}

/// Attaches a Retry-After header — only for refusals that time heals
/// (recovering 503s, queue/registry pressure 429s). Budget-exhausted
/// 429s never get one: spent ε does not come back.
HttpResponse WithRetryAfter(HttpResponse response, int64_t seconds) {
  response.headers.emplace_back("Retry-After", std::to_string(seconds));
  return response;
}

}  // namespace

HttpResponse ErrorResponse(const Status& status) {
  return JsonResponse(HttpStatusForCode(status.code()),
                      StatusToJson(status));
}

QueryServer::QueryServer(ServerOptions options)
    : options_(std::move(options)),
      admission_(options_.admission),
      registry_(options_.registry_limits) {}

QueryServer::~QueryServer() { Stop(); }

Status QueryServer::Start() {
  if (started_) return Status::FailedPrecondition("server already started");
  PRIVBASIS_ASSIGN_OR_RETURN(listen_fd_,
                             net::ListenTcp(options_.host, options_.port));
  PRIVBASIS_ASSIGN_OR_RETURN(port_, net::LocalPort(listen_fd_));
  // Request handlers may block on Engine::Run, so they get their own
  // pool (not the global counting pool); Submit needs ≥ 1 worker.
  pool_ = std::make_unique<ThreadPool>(
      std::max<size_t>(1, EffectiveThreads(options_.num_threads)));
  stopping_.store(false, std::memory_order_release);
  batch_window_us_ = options_.batch_window_us >= 0
                         ? options_.batch_window_us
                         : GetEnvInt("PRIVBASIS_BATCH_WINDOW_US", 0);
  max_batch_ = options_.max_batch != 0
                   ? options_.max_batch
                   : static_cast<size_t>(std::max<int64_t>(
                         1, GetEnvInt("PRIVBASIS_MAX_BATCH", 8)));
  if (BatchingEnabled()) batch_stats_ = std::make_shared<BatchStats>();
  // Coordinator mode: stand up the worker fleet BEFORE anything can
  // register (including recovery) — every dataset becoming findable must
  // go through the attach hook, and a misconfigured fleet should fail
  // startup, not the first registration.
  if (!options_.shard_workers.empty()) {
    for (const std::string& spec : options_.shard_workers) {
      PRIVBASIS_ASSIGN_OR_RETURN(WorkerAddr addr, ParseWorkerAddr(spec));
      shard_workers_.push_back(
          std::make_shared<ShardWorkerClient>(std::move(addr)));
    }
    for (const auto& worker : shard_workers_) {
      if (Status alive = worker->Ping(2000); !alive.ok()) {
        return alive;
      }
    }
  }
  if (!shard_workers_.empty() || BatchingEnabled()) {
    registry_.SetAttachHook(
        [this](const std::string& id,
               const std::shared_ptr<Dataset>& dataset) {
          return AttachExecutors(id, dataset);
        });
  }
  // Recovery runs behind the already-listening socket: a restarting
  // server is reachable immediately (503, retryable) instead of
  // connection-refused, and no route can touch the registry before the
  // ledger replay has finished.
  if (!options_.state_dir.empty()) {
    recovery_state_.store(RecoveryState::kRecovering,
                          std::memory_order_release);
    recovery_thread_ = std::thread([this] { RecoverState(); });
  }
  EventLoop::Options loop_options;
  loop_options.limits = HttpLimits{.max_body_bytes = options_.max_body_bytes};
  loop_options.request_deadline_ms = options_.request_deadline_ms;
  loop_options.max_requests_per_connection =
      options_.max_requests_per_connection;
  EventLoop::Hooks hooks;
  hooks.dispatch = [this](uint64_t conn_id, HttpRequest request) {
    DispatchRequest(conn_id, std::move(request));
  };
  hooks.on_connection = [this] {
    MutexLock lock(mu_);
    ++counters_.connections;
  };
  hooks.error_response = [this](HttpReadOutcome outcome) {
    return ProtocolErrorResponse(outcome);
  };
  loop_ = std::make_unique<EventLoop>(std::move(loop_options),
                                      std::move(hooks));
  if (Status up = loop_->Start(std::move(listen_fd_)); !up.ok()) {
    loop_.reset();
    pool_.reset();
    return up;
  }
  started_ = true;
  return Status::OK();
}

void QueryServer::RecoverState() {
  // Lets the fault-injection tests hold the server in its 503 window
  // (sleep action) or kill it mid-recovery (crash action).
  (void)failpoint::Hit("recovery_start");
  Status status = [&]() -> Status {
    PRIVBASIS_ASSIGN_OR_RETURN(
        store_,
        store::StateStore::Open(options_.state_dir, options_.fsync_mode));
    PRIVBASIS_ASSIGN_OR_RETURN(auto recovered, store_->RecoverDatasets());
    registry_.SetNextId(store_->next_id());
    for (auto& entry : recovered) {
      PRIVBASIS_RETURN_NOT_OK(registry_.RegisterRecovered(
          entry.id, std::move(entry.dataset)));
    }
    // From here on, nothing becomes registered without first being
    // persisted + journal-bound (the hook runs before the registry map
    // insert). No wire registration can have raced us: every route was
    // still answering 503.
    registry_.SetRegisterHook(
        [this](const std::string& id,
               const std::shared_ptr<Dataset>& dataset) {
          return store_->PersistRegistration(id, dataset);
        });
    return Status::OK();
  }();
  {
    MutexLock lock(recovery_mu_);
    recovery_error_ = status;
    recovery_state_.store(status.ok() ? RecoveryState::kReady
                                      : RecoveryState::kFailed,
                          std::memory_order_release);
  }
  recovery_cv_.NotifyAll();
}

Status QueryServer::WaitUntilReady() {
  MutexLock lock(recovery_mu_);
  while (recovery_state_.load(std::memory_order_acquire) ==
         RecoveryState::kRecovering) {
    recovery_cv_.Wait(recovery_mu_);
  }
  return recovery_error_;
}

void QueryServer::Stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_release);
  if (recovery_thread_.joinable()) recovery_thread_.join();
  // Ordering matters: stop accepting first (frees the port, closes idle
  // connections), then join the pool — its destructor runs every queued
  // task, so each dispatched request still produces its CompleteRequest
  // — and only then flush + close the remaining connections.
  if (loop_ != nullptr) loop_->RequestStop();
  pool_.reset();
  if (loop_ != nullptr) {
    loop_->Join();
    loop_.reset();
  }
  started_ = false;
}

QueryServer::Counters QueryServer::counters() const {
  MutexLock lock(mu_);
  return counters_;
}

void QueryServer::DispatchRequest(uint64_t conn_id, HttpRequest request) {
  {
    MutexLock lock(mu_);
    ++counters_.requests;
  }
  auto task = [this, conn_id, request = std::move(request)]() mutable {
    HttpResponse response = Route(request);
    // Client-requested close; the loop adds its own reasons (served
    // count, shutdown) on top.
    response.close_connection =
        response.close_connection || !request.KeepAlive();
    loop_->CompleteRequest(conn_id, std::move(response));
  };
  const size_t max_depth = options_.admission.max_queue_depth;
  if (max_depth == 0) {
    pool_->Submit(std::move(task));
    return;
  }
  if (!pool_->TrySubmit(std::move(task), max_depth)) {
    // Bounded-queue shed: the request would only have waited its
    // deadline out behind max_depth others. Tell the client to come
    // back — the loop writes the tiny 503 without ever blocking a
    // worker, and closes afterwards.
    size_t queue_depth;
    {
      MutexLock lock(mu_);
      ++counters_.connections_shed;
      queue_depth = pool_->QueueDepth();
    }
    HttpResponse shed = ErrorResponse(Status::Unavailable(
        "server at capacity (" + std::to_string(max_depth) +
        " requests queued); retry shortly"));
    shed = WithRetryAfter(std::move(shed),
                          admission_.RetryAfterSeconds(queue_depth));
    shed.close_connection = true;
    loop_->CompleteRequest(conn_id, std::move(shed));
  }
}

HttpResponse QueryServer::ProtocolErrorResponse(HttpReadOutcome outcome) const {
  HttpResponse response;
  switch (outcome) {
    case HttpReadOutcome::kTimeout:
      response = ErrorResponse(Status::ResourceExhausted(
          "request deadline (" +
          std::to_string(options_.request_deadline_ms) + " ms) exceeded"));
      response.status = 408;
      break;
    case HttpReadOutcome::kHeaderTooLarge:
      response = ErrorResponse(
          Status::ResourceExhausted("request headers exceed 16 KiB"));
      response.status = 431;
      break;
    case HttpReadOutcome::kBodyTooLarge:
      response = ErrorResponse(Status::ResourceExhausted(
          "request body exceeds " +
          std::to_string(options_.max_body_bytes) + " bytes"));
      response.status = 413;
      break;
    case HttpReadOutcome::kMalformed:
    default:
      response =
          ErrorResponse(Status::InvalidArgument("malformed HTTP request"));
      break;
  }
  return response;
}

HttpResponse QueryServer::Route(const HttpRequest& request) {
  // No route — health checks included — answers before the ledger
  // replay is done: a response computed from an unreplayed registry
  // could spend ε a previous life already spent. 503 = retryable.
  switch (recovery_state_.load(std::memory_order_acquire)) {
    case RecoveryState::kReady:
      break;
    case RecoveryState::kRecovering: {
      // Recovering is the refusal time heals — tell clients when to
      // come back (WAL replay is typically sub-second).
      if (request.target == "/healthz") {
        json::Value body;
        body.Set("status", "recovering");
        return WithRetryAfter(JsonResponse(503, body), 1);
      }
      return WithRetryAfter(
          ErrorResponse(Status::Unavailable(
              "state recovery in progress; retry shortly")),
          1);
    }
    case RecoveryState::kFailed: {
      // Permanently 503 rather than serving a ledger we could not
      // verify (or, worse, a silently fresh one).
      MutexLock lock(recovery_mu_);
      return ErrorResponse(Status::Unavailable(
          "state recovery failed: " + recovery_error_.ToString()));
    }
  }
  if (request.target == "/healthz") {
    if (request.method != "GET") {
      HttpResponse r = ErrorResponse(
          Status::InvalidArgument("use GET /healthz"));
      r.status = 405;
      return r;
    }
    return HandleHealth();
  }
  if (request.target == "/v1/stats") {
    if (request.method != "GET") {
      HttpResponse r = ErrorResponse(
          Status::InvalidArgument("use GET /v1/stats"));
      r.status = 405;
      return r;
    }
    return HandleStats();
  }
  if (request.target == "/v1/query") {
    if (request.method != "POST") {
      HttpResponse r = ErrorResponse(
          Status::InvalidArgument("use POST /v1/query"));
      r.status = 405;
      return r;
    }
    return HandleQuery(request);
  }
  if (request.target == "/v1/datasets") {
    if (request.method != "POST") {
      HttpResponse r = ErrorResponse(
          Status::InvalidArgument("use POST /v1/datasets"));
      r.status = 405;
      return r;
    }
    return HandleRegisterDataset(request);
  }
  const DatasetPath path = ParseDatasetPath(request.target);
  if (!path.id.empty()) {
    // Known path shapes get a real 405 on a verb mismatch so a client
    // can distinguish "wrong method" from "unknown dataset" (404).
    if (path.tail == "budget") {
      if (request.method != "GET") {
        HttpResponse r = ErrorResponse(Status::InvalidArgument(
            "use GET /v1/datasets/:id/budget"));
        r.status = 405;
        return r;
      }
      return HandleBudget(path.id);
    }
    if (path.tail.empty()) {
      if (request.method != "DELETE") {
        HttpResponse r = ErrorResponse(
            Status::InvalidArgument("use DELETE /v1/datasets/:id"));
        r.status = 405;
        return r;
      }
      return HandleEvict(path.id);
    }
  }
  return ErrorResponse(
      Status::NotFound("no route for " + request.method + " " +
                       request.target));
}

Status QueryServer::AttachExecutors(const std::string& id,
                                    const std::shared_ptr<Dataset>& dataset) {
  if (!shard_workers_.empty()) {
    PRIVBASIS_RETURN_NOT_OK(ShardToWorkers(id, dataset));
  }
  if (!BatchingEnabled()) return Status::OK();
  // Wrap whatever the dataset counts through (remote fleet, local
  // shards, or the direct scan) so same-dataset queries can share scans.
  // Fused counts merge exactly before any noise draw, so attaching the
  // batcher never changes a release bit.
  auto batcher = std::make_shared<BatchingCountExecutor>(
      dataset->EnsureCountExecutor(),
      BatchingCountExecutor::Options{.window_us = batch_window_us_,
                                     .max_batch = max_batch_},
      batch_stats_);
  dataset->AttachCountExecutor(batcher);
  MutexLock lock(batchers_mu_);
  batchers_[id] = std::move(batcher);
  return Status::OK();
}

Status QueryServer::ShardToWorkers(const std::string& id,
                                   const std::shared_ptr<Dataset>& dataset) {
  // Same contiguous partition the in-process executor would use, so a
  // coordinator-served release is bit-identical to a local one.
  PRIVBASIS_ASSIGN_OR_RETURN(
      ShardedDatabase slices,
      ShardedDatabase::Create(dataset->db(), shard_workers_.size()));
  for (size_t s = 0; s < shard_workers_.size(); ++s) {
    PRIVBASIS_RETURN_NOT_OK(shard_workers_[s]->LoadShard(id, slices.shard(s)));
  }
  dataset->AttachCountExecutor(
      std::make_shared<RemoteShardExecutor>(id, shard_workers_));
  return Status::OK();
}

HttpResponse QueryServer::HandleQuery(const HttpRequest& request) {
  auto finish = [this](HttpResponse response) {
    MutexLock lock(mu_);
    if (response.status / 100 == 2) {
      ++counters_.queries_ok;
    } else {
      ++counters_.queries_rejected;
    }
    return response;
  };

  auto parsed = json::Parse(request.body);
  if (!parsed.ok()) return finish(ErrorResponse(parsed.status()));
  const json::Value* dataset_id = parsed->Find("dataset");
  if (dataset_id == nullptr) {
    return finish(ErrorResponse(Status::InvalidArgument(
        "\"dataset\" (a registered handle id) is required")));
  }
  auto id = dataset_id->GetString();
  if (!id.ok()) return finish(ErrorResponse(id.status()));
  auto spec = QuerySpecFromJson(*parsed);
  if (!spec.ok()) return finish(ErrorResponse(spec.status()));

  // Client deadline ("deadline_ms" envelope key), capped by the
  // server's own per-request budget: no query may outlive the window
  // its response could still be written in.
  int64_t deadline_ms = options_.request_deadline_ms;
  if (const json::Value* v = parsed->Find("deadline_ms")) {
    auto client_ms = v->GetUint();
    if (!client_ms.ok()) {
      return finish(ErrorResponse(Status::InvalidArgument(
          std::string("\"deadline_ms\": ") +
          std::string(client_ms.status().message()))));
    }
    if (*client_ms > 0 &&
        *client_ms < static_cast<uint64_t>(deadline_ms)) {
      deadline_ms = static_cast<int64_t>(*client_ms);
    }
  }

  std::shared_ptr<Dataset> dataset = registry_.Find(*id);
  if (dataset == nullptr) {
    return finish(ErrorResponse(
        Status::NotFound("unknown dataset \"" + *id + "\"")));
  }

  // Admission: pure arithmetic over the memoized dataset statistics —
  // a shed here has reserved nothing, drawn no noise, and left the
  // ε ledger untouched. The refusal arrives in milliseconds instead of
  // the 408 the client would otherwise wait a whole deadline for.
  // The predicted cost is divided by the dataset's counting fan-out:
  // sharded scans finish ~fanout× sooner, and Observe() below feeds the
  // same scaled units back, so ns_per_unit calibrates consistently.
  const double work_units =
      CostModel::WorkUnits(dataset->Stats(), *spec) /
      static_cast<double>(std::max<size_t>(1, dataset->shard_fanout()));
  const AdmissionDecision decision =
      admission_.Decide(work_units, pool_->QueueDepth());
  if (!decision.admit) {
    const bool queue_full = decision.reason == ShedReason::kQueueFull;
    {
      MutexLock lock(mu_);
      if (queue_full) {
        ++counters_.queries_shed_queue;
      } else {
        ++counters_.queries_shed_predicted;
      }
    }
    Status refused = Status::ResourceExhausted(
        queue_full
            ? "server overloaded: worker queue at capacity; retry after " +
                  std::to_string(decision.retry_after_s) + " s"
            : "query refused: predicted latency " +
                  std::to_string(decision.predicted_ms) + " ms exceeds the " +
                  std::to_string(options_.admission.slo_ms) + " ms SLO");
    json::Value body = StatusToJson(refused);
    body.Set("predicted_ms", decision.predicted_ms);
    body.Set("slo_ms", options_.admission.slo_ms);
    return finish(WithRetryAfter(JsonResponse(429, body),
                                 decision.retry_after_s));
  }
  {
    MutexLock lock(mu_);
    ++counters_.queries_admitted;
  }

  // Batching bracket: while this query runs, same-dataset co-arrivals
  // may share counting scans with it (core/batch_exec.h). The in-flight
  // count BeginQuery bumps is what sizes batch rounds; the window hint
  // keeps cheap queries from waiting a full window for co-riders that
  // would barely help them.
  std::shared_ptr<BatchingCountExecutor> batcher;
  if (BatchingEnabled()) {
    MutexLock lock(batchers_mu_);
    auto it = batchers_.find(*id);
    if (it != batchers_.end()) batcher = it->second;
  }
  if (batcher != nullptr) {
    int64_t hint_us = batch_window_us_;
    if (decision.predicted_ms > 0 && pool_->QueueDepth() == 0) {
      // Bound the wait to a small fraction of the predicted runtime.
      hint_us = std::clamp<int64_t>(
          static_cast<int64_t>(decision.predicted_ms * 1000.0 / 16.0),
          int64_t{50}, batch_window_us_);
    }
    batcher->BeginQuery(hint_us);
  }
  struct BatchScope {
    std::shared_ptr<BatchingCountExecutor> b;
    ~BatchScope() {
      if (b != nullptr) b->EndQuery();
    }
  } batch_scope{batcher};

  // The full in-process path: central validation, budget reservation
  // (429 before any noise on overdraft), mechanism, ledger commit. The
  // deadline rides along as a cooperative cancel token: mid-scan expiry
  // unwinds within one shard-chunk, frees this worker, and charges the
  // full reservation (fail-closed — noise may have been observed).
  const CancelToken token = CancelToken::AfterMs(deadline_ms);
  spec->cancel = &token;
  const auto started = std::chrono::steady_clock::now();
  auto release = Engine::Run(dataset, *spec);
  if (!release.ok()) {
    if (release.status().code() == StatusCode::kCancelled) {
      MutexLock lock(mu_);
      ++counters_.queries_cancelled;
    }
    return finish(ErrorResponse(release.status()));
  }
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - started)
          .count();
  // Every completed query tightens the cost model's ns-per-unit scale.
  admission_.model().Observe(work_units, elapsed_ms);
  {
    MutexLock lock(mu_);
    ++counters_.queries_completed;
  }
  return finish(JsonResponse(200, ReleaseToJson(*release)));
}

HttpResponse QueryServer::HandleRegisterDataset(const HttpRequest& request) {
  auto parsed = json::Parse(request.body);
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  auto registered = registry_.RegisterFromJson(*parsed);
  if (!registered.ok()) {
    HttpResponse response = ErrorResponse(registered.status());
    // Registry-full is retryable (after an evict) — unlike a budget
    // 429, where waiting buys nothing.
    if (registered.status().code() == StatusCode::kResourceExhausted) {
      response = WithRetryAfter(std::move(response), 5);
    }
    return response;
  }
  // Use the returned handle, never a re-lookup: a concurrent DELETE of
  // the fresh id must not null this out under us.
  const std::shared_ptr<Dataset>& dataset = registered->dataset;
  json::Value body;
  body.Set("dataset", registered->id);
  body.Set("num_transactions", dataset->db().NumTransactions());
  body.Set("universe_size", dataset->db().UniverseSize());
  json::Value budget;
  const Accountant& accountant = *dataset->accountant();
  budget.Set("total", accountant.total_epsilon() ==
                              std::numeric_limits<double>::infinity()
                          ? json::Value(nullptr)
                          : json::Value(accountant.total_epsilon()));
  body.Set("budget", std::move(budget));
  return JsonResponse(201, body);
}

HttpResponse QueryServer::HandleBudget(const std::string& id) {
  const std::shared_ptr<Dataset> dataset = registry_.Find(id);
  if (dataset == nullptr) {
    return ErrorResponse(Status::NotFound("unknown dataset \"" + id + "\""));
  }
  const Accountant& accountant = *dataset->accountant();
  json::Value body;
  const double total = accountant.total_epsilon();
  body.Set("total", std::isfinite(total) ? json::Value(total)
                                         : json::Value(nullptr));
  body.Set("spent", accountant.spent_epsilon());
  body.Set("reserved", accountant.reserved_epsilon());
  const double remaining = accountant.remaining_epsilon();
  body.Set("remaining", std::isfinite(remaining)
                            ? json::Value(remaining)
                            : json::Value(nullptr));
  json::Value::Array ledger;
  for (const auto& entry : accountant.ledger()) {
    json::Value e;
    e.Set("label", entry.label);
    e.Set("epsilon", entry.epsilon);
    ledger.emplace_back(std::move(e));
  }
  body.Set("ledger", std::move(ledger));
  return JsonResponse(200, body);
}

HttpResponse QueryServer::HandleEvict(const std::string& id) {
  if (registry_.Find(id) == nullptr) {
    return ErrorResponse(Status::NotFound("unknown dataset \"" + id + "\""));
  }
  // Durably forget BEFORE the registry does: if the manifest rewrite
  // fails the dataset stays registered (500, retryable) — the bad
  // outcome would be a dataset the operator saw deleted coming back on
  // restart with its budget ledger still live.
  if (store_ != nullptr) {
    if (Status persisted = store_->PersistEviction(id); !persisted.ok()) {
      return ErrorResponse(persisted);
    }
  }
  if (!registry_.Remove(id)) {
    return ErrorResponse(Status::NotFound("unknown dataset \"" + id + "\""));
  }
  // Best-effort shard unload: a failure only leaves a worker holding a
  // slice no query can reach any more (ids are never reused), so it must
  // not turn a completed eviction into an error.
  for (const auto& worker : shard_workers_) {
    (void)worker->DropShard(id);
  }
  {
    // In-flight queries on the evicted dataset keep their batcher alive
    // through their own shared_ptr brackets.
    MutexLock lock(batchers_mu_);
    batchers_.erase(id);
  }
  HttpResponse response;
  response.status = 204;
  return response;
}

HttpResponse QueryServer::HandleStats() {
  const Counters counters = this->counters();
  StatsSnapshot stats;
  stats.queries_admitted = counters.queries_admitted;
  stats.queries_shed_predicted = counters.queries_shed_predicted;
  stats.queries_shed_queue = counters.queries_shed_queue;
  stats.queries_cancelled = counters.queries_cancelled;
  stats.queries_completed = counters.queries_completed;
  stats.connections = counters.connections;
  stats.connections_shed = counters.connections_shed;
  stats.slo_ms = options_.admission.slo_ms;
  stats.max_queue_depth = options_.admission.max_queue_depth;
  stats.queue_depth = pool_ != nullptr ? pool_->QueueDepth() : 0;
  stats.ns_per_unit = admission_.model().ns_per_unit();
  stats.recent_query_ms = admission_.model().recent_query_ms();
  stats.shard_workers = shard_workers_.size();
  stats.shard_fanout = shard_workers_.empty()
                           ? static_cast<uint64_t>(NumShards())
                           : shard_workers_.size();
  stats.batch_window_us = batch_window_us_;
  stats.batch_max = BatchingEnabled() ? max_batch_ : 0;
  if (batch_stats_ != nullptr) {
    stats.batches = batch_stats_->batches.load(std::memory_order_relaxed);
    stats.batched_queries =
        batch_stats_->batched_queries.load(std::memory_order_relaxed);
    stats.scans_saved =
        batch_stats_->scans_saved.load(std::memory_order_relaxed);
  }
  return JsonResponse(200, StatsToJson(stats));
}

HttpResponse QueryServer::HandleHealth() {
  const Counters counters = this->counters();
  json::Value body;
  body.Set("status", "ok");
  body.Set("datasets", registry_.size());
  body.Set("connections", counters.connections);
  body.Set("requests", counters.requests);
  body.Set("queries_ok", counters.queries_ok);
  body.Set("queries_rejected", counters.queries_rejected);
  return JsonResponse(200, body);
}

}  // namespace privbasis::server
