#include "server/http.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace privbasis::server {

namespace {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Parses the head (request line + headers, already verified to end with
/// CRLFCRLF at `head_end`). Returns false on grammar violations.
bool ParseHead(std::string_view head, HttpRequest* request) {
  const size_t line_end = head.find("\r\n");
  if (line_end == std::string_view::npos) return false;
  std::string_view line = head.substr(0, line_end);
  // Strict request-line grammar (RFC 7230 §3.1.1): exactly three
  // space-separated tokens, no tabs. Pairing find with rfind would
  // accept an embedded space in the target ("GET /a b HTTP/1.1").
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return false;
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos ||
      line.find(' ', sp2 + 1) != std::string_view::npos ||
      line.find('\t') != std::string_view::npos) {
    return false;
  }
  request->method = std::string(line.substr(0, sp1));
  request->target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  request->version = std::string(line.substr(sp2 + 1));
  if (request->method.empty() || request->target.empty() ||
      request->target[0] != '/' ||
      !request->version.starts_with("HTTP/1.")) {
    return false;
  }
  size_t pos = line_end + 2;
  while (pos < head.size()) {
    const size_t next = head.find("\r\n", pos);
    if (next == std::string_view::npos) break;
    std::string_view header = head.substr(pos, next - pos);
    pos = next + 2;
    if (header.empty()) break;
    const size_t colon = header.find(':');
    if (colon == std::string_view::npos || colon == 0) return false;
    request->headers.emplace_back(
        std::string(Trim(header.substr(0, colon))),
        std::string(Trim(header.substr(colon + 1))));
  }
  return true;
}

}  // namespace

const std::string* HttpRequest::Header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (EqualsIgnoreCase(key, name)) return &value;
  }
  return nullptr;
}

const std::string* HttpResponse::Header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (EqualsIgnoreCase(key, name)) return &value;
  }
  return nullptr;
}

bool HttpRequest::KeepAlive() const {
  const std::string* connection = Header("Connection");
  if (connection == nullptr) return version != "HTTP/1.0";
  return !EqualsIgnoreCase(*connection, "close");
}

HttpParseResult ParseHttpRequest(std::string* buffer,
                                 const HttpLimits& limits,
                                 HttpRequest* request) {
  *request = HttpRequest();
  HttpParseResult result;
  const size_t head_end = buffer->find("\r\n\r\n");
  if (head_end == std::string::npos) {
    result.outcome = buffer->size() > limits.max_header_bytes
                         ? HttpParseOutcome::kHeaderTooLarge
                         : HttpParseOutcome::kNeedMore;
    return result;
  }
  if (head_end + 4 > limits.max_header_bytes) {
    result.outcome = HttpParseOutcome::kHeaderTooLarge;
    return result;
  }
  if (!ParseHead(std::string_view(*buffer).substr(0, head_end + 2),
                 request)) {
    result.outcome = HttpParseOutcome::kMalformed;
    return result;
  }

  size_t content_length = 0;
  if (const std::string* cl = request->Header("Content-Length")) {
    // Duplicate Content-Length headers are a framing error (RFC 7230
    // §3.3.2, request-smuggling class): reject outright rather than
    // silently picking one.
    size_t occurrences = 0;
    for (const auto& [key, value] : request->headers) {
      occurrences += EqualsIgnoreCase(key, "Content-Length");
    }
    if (occurrences > 1) {
      result.outcome = HttpParseOutcome::kMalformed;
      return result;
    }
    // Strict digits-only parse: "-1" must be a 400 grammar violation,
    // not a strtoull wraparound answered 413.
    if (cl->empty() ||
        cl->find_first_not_of("0123456789") != std::string::npos) {
      result.outcome = HttpParseOutcome::kMalformed;
      return result;
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(cl->c_str(), &end, 10);
    if (errno == ERANGE || end != cl->c_str() + cl->size()) {
      result.outcome = HttpParseOutcome::kMalformed;
      return result;
    }
    content_length = static_cast<size_t>(parsed);
  } else if (request->Header("Transfer-Encoding") != nullptr) {
    // Content-Length bodies only (header comment); a chunked request
    // would desynchronize the stream, so reject it outright.
    result.outcome = HttpParseOutcome::kMalformed;
    return result;
  }
  const size_t body_start = head_end + 4;
  if (content_length > limits.max_body_bytes) {
    // Consume the head plus whatever of the oversized body has already
    // arrived; report the remainder so the caller can discard it before
    // responding 413.
    const size_t received =
        std::min(buffer->size() - body_start, content_length);
    buffer->erase(0, body_start + received);
    result.outcome = HttpParseOutcome::kBodyTooLarge;
    result.drain_bytes = content_length - received;
    return result;
  }
  if (buffer->size() - body_start < content_length) {
    result.outcome = HttpParseOutcome::kNeedMore;
    return result;
  }
  request->body = buffer->substr(body_start, content_length);
  // Keep pipelined bytes beyond this request for the next call.
  buffer->erase(0, body_start + content_length);
  result.outcome = HttpParseOutcome::kOk;
  return result;
}

HttpReadOutcome ReadHttpRequest(const net::Fd& fd, const HttpLimits& limits,
                                net::Deadline deadline, std::string* buffer,
                                HttpRequest* request) {
  char chunk[8192];
  for (;;) {
    const HttpParseResult parsed = ParseHttpRequest(buffer, limits, request);
    switch (parsed.outcome) {
      case HttpParseOutcome::kOk:
        return HttpReadOutcome::kOk;
      case HttpParseOutcome::kMalformed:
        return HttpReadOutcome::kMalformed;
      case HttpParseOutcome::kHeaderTooLarge:
        return HttpReadOutcome::kHeaderTooLarge;
      case HttpParseOutcome::kBodyTooLarge: {
        // Drain the declared body (bounded) before the caller responds:
        // closing with unread request bytes in flight sends a RST that
        // can destroy the 413 before the client reads it. Beyond the
        // cap the sender is abusive and just gets the reset.
        constexpr size_t kDrainCap = 8 * 1024 * 1024;
        size_t remaining = parsed.drain_bytes;
        if (remaining <= kDrainCap) {
          while (remaining > 0) {
            auto n = net::ReadSome(fd, chunk,
                                   std::min(sizeof(chunk), remaining),
                                   deadline);
            if (!n.ok() || *n == 0) break;
            remaining -= *n;
          }
        }
        return HttpReadOutcome::kBodyTooLarge;
      }
      case HttpParseOutcome::kNeedMore:
        break;
    }
    auto n = net::ReadSome(fd, chunk, sizeof(chunk), deadline);
    if (!n.ok()) {
      return n.status().code() == StatusCode::kResourceExhausted
                 ? (buffer->empty() ? HttpReadOutcome::kClosed
                                    : HttpReadOutcome::kTimeout)
                 : HttpReadOutcome::kIoError;
    }
    if (*n == 0) {
      // EOF: clean between requests, malformed mid-request.
      return buffer->empty() ? HttpReadOutcome::kClosed
                             : HttpReadOutcome::kMalformed;
    }
    buffer->append(chunk, *n);
  }
}

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string SerializeHttpResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    HttpReasonPhrase(response.status) + "\r\n";
  // RFC 7230 §3.3.2: a 204 carries no body and MUST NOT carry
  // Content-Length — suppress both framing headers and the payload.
  const bool framed = response.status != 204;
  if (framed) {
    out += "Content-Type: " + response.content_type + "\r\n";
    out += "Content-Length: " + std::to_string(response.body.size()) +
           "\r\n";
  }
  for (const auto& [key, value] : response.headers) {
    out += key + ": " + value + "\r\n";
  }
  if (response.close_connection) out += "Connection: close\r\n";
  out += "\r\n";
  if (framed) out += response.body;
  return out;
}

Status WriteHttpResponse(const net::Fd& fd, const HttpResponse& response,
                         net::Deadline deadline) {
  return net::WriteAll(fd, SerializeHttpResponse(response), deadline);
}

Result<HttpResponse> HttpCall(const std::string& host, uint16_t port,
                              const std::string& method,
                              const std::string& target,
                              const std::string& body, int64_t timeout_ms) {
  const net::Deadline deadline = net::DeadlineAfterMs(timeout_ms);
  PRIVBASIS_ASSIGN_OR_RETURN(net::Fd fd,
                             net::ConnectTcp(host, port, deadline));
  std::string request = method + " " + target + " HTTP/1.1\r\n" +
                        "Host: " + host + "\r\n" +
                        "Connection: close\r\n";
  if (!body.empty()) {
    request += "Content-Type: application/json\r\n";
  }
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  request += body;
  PRIVBASIS_RETURN_NOT_OK(net::WriteAll(fd, request, deadline));

  std::string raw;
  char chunk[8192];
  for (;;) {
    PRIVBASIS_ASSIGN_OR_RETURN(size_t n,
                               net::ReadSome(fd, chunk, sizeof(chunk),
                                             deadline));
    if (n == 0) break;
    raw.append(chunk, n);
  }
  const size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    return Status::IoError("truncated HTTP response");
  }
  HttpResponse response;
  const size_t line_end = raw.find("\r\n");
  // "HTTP/1.1 200 OK" — the status code is the 3-digit token after the
  // first space; don't assume the version token is exactly 8 chars
  // ("HTTP/2 200" is a valid status line too).
  const std::string_view status_line(raw.data(), line_end);
  if (!status_line.starts_with("HTTP/")) {
    return Status::IoError("malformed HTTP status line");
  }
  const size_t sp = status_line.find(' ');
  if (sp == std::string_view::npos || sp + 4 > status_line.size()) {
    return Status::IoError("malformed HTTP status line");
  }
  response.status = 0;
  for (size_t i = sp + 1; i < sp + 4; ++i) {
    const char c = status_line[i];
    if (c < '0' || c > '9') {
      return Status::IoError("malformed HTTP status code");
    }
    response.status = response.status * 10 + (c - '0');
  }
  if (sp + 4 < status_line.size() && status_line[sp + 4] != ' ') {
    return Status::IoError("malformed HTTP status code");
  }
  if (response.status < 100 || response.status > 599) {
    return Status::IoError("malformed HTTP status code");
  }
  // Surface the response headers (the admission tests read Retry-After).
  size_t pos = line_end + 2;
  while (pos < head_end + 2) {
    const size_t next = raw.find("\r\n", pos);
    if (next == std::string::npos || next > head_end) break;
    const std::string_view header(raw.data() + pos, next - pos);
    pos = next + 2;
    const size_t colon = header.find(':');
    if (colon == std::string_view::npos || colon == 0) continue;
    response.headers.emplace_back(
        std::string(Trim(header.substr(0, colon))),
        std::string(Trim(header.substr(colon + 1))));
  }
  response.body = raw.substr(head_end + 4);
  return response;
}

}  // namespace privbasis::server
