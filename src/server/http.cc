#include "server/http.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace privbasis::server {

namespace {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Parses the head (request line + headers, already verified to end with
/// CRLFCRLF at `head_end`). Returns false on grammar violations.
bool ParseHead(std::string_view head, HttpRequest* request) {
  const size_t line_end = head.find("\r\n");
  if (line_end == std::string_view::npos) return false;
  std::string_view line = head.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) return false;
  request->method = std::string(line.substr(0, sp1));
  request->target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  request->version = std::string(line.substr(sp2 + 1));
  if (request->method.empty() || request->target.empty() ||
      request->target[0] != '/' ||
      !request->version.starts_with("HTTP/1.")) {
    return false;
  }
  size_t pos = line_end + 2;
  while (pos < head.size()) {
    const size_t next = head.find("\r\n", pos);
    if (next == std::string_view::npos) break;
    std::string_view header = head.substr(pos, next - pos);
    pos = next + 2;
    if (header.empty()) break;
    const size_t colon = header.find(':');
    if (colon == std::string_view::npos || colon == 0) return false;
    request->headers.emplace_back(
        std::string(Trim(header.substr(0, colon))),
        std::string(Trim(header.substr(colon + 1))));
  }
  return true;
}

}  // namespace

const std::string* HttpRequest::Header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (EqualsIgnoreCase(key, name)) return &value;
  }
  return nullptr;
}

const std::string* HttpResponse::Header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (EqualsIgnoreCase(key, name)) return &value;
  }
  return nullptr;
}

bool HttpRequest::KeepAlive() const {
  const std::string* connection = Header("Connection");
  if (connection == nullptr) return version != "HTTP/1.0";
  return !EqualsIgnoreCase(*connection, "close");
}

HttpReadOutcome ReadHttpRequest(const net::Fd& fd, const HttpLimits& limits,
                                net::Deadline deadline, std::string* buffer,
                                HttpRequest* request) {
  *request = HttpRequest();
  char chunk[8192];
  size_t head_end = std::string::npos;
  // Phase 1: accumulate until CRLFCRLF.
  for (;;) {
    head_end = buffer->find("\r\n\r\n");
    if (head_end != std::string::npos) break;
    if (buffer->size() > limits.max_header_bytes) {
      return HttpReadOutcome::kHeaderTooLarge;
    }
    auto n = net::ReadSome(fd, chunk, sizeof(chunk), deadline);
    if (!n.ok()) {
      return n.status().code() == StatusCode::kResourceExhausted
                 ? (buffer->empty() ? HttpReadOutcome::kClosed
                                    : HttpReadOutcome::kTimeout)
                 : HttpReadOutcome::kIoError;
    }
    if (*n == 0) {
      // EOF: clean between requests, malformed mid-head.
      return buffer->empty() ? HttpReadOutcome::kClosed
                             : HttpReadOutcome::kMalformed;
    }
    buffer->append(chunk, *n);
  }
  if (head_end + 4 > limits.max_header_bytes) {
    return HttpReadOutcome::kHeaderTooLarge;
  }
  if (!ParseHead(std::string_view(*buffer).substr(0, head_end + 2),
                 request)) {
    return HttpReadOutcome::kMalformed;
  }

  // Phase 2: the body, if any.
  size_t content_length = 0;
  if (const std::string* cl = request->Header("Content-Length")) {
    // Duplicate Content-Length headers are a framing error (RFC 7230
    // §3.3.2, request-smuggling class): reject outright rather than
    // silently picking one.
    size_t occurrences = 0;
    for (const auto& [key, value] : request->headers) {
      occurrences += EqualsIgnoreCase(key, "Content-Length");
    }
    if (occurrences > 1) return HttpReadOutcome::kMalformed;
    // Strict digits-only parse: "-1" must be a 400 grammar violation,
    // not a strtoull wraparound answered 413.
    if (cl->empty() ||
        cl->find_first_not_of("0123456789") != std::string::npos) {
      return HttpReadOutcome::kMalformed;
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(cl->c_str(), &end, 10);
    if (errno == ERANGE || end != cl->c_str() + cl->size()) {
      return HttpReadOutcome::kMalformed;
    }
    content_length = static_cast<size_t>(parsed);
  } else if (request->Header("Transfer-Encoding") != nullptr) {
    // Content-Length bodies only (header comment); a chunked request
    // would desynchronize the stream, so reject it outright.
    return HttpReadOutcome::kMalformed;
  }
  const size_t body_start = head_end + 4;
  if (content_length > limits.max_body_bytes) {
    // Drain the declared body (bounded) before the caller responds:
    // closing with unread request bytes in flight sends a RST that can
    // destroy the 413 before the client reads it. Beyond the cap the
    // sender is abusive and just gets the reset.
    constexpr size_t kDrainCap = 8 * 1024 * 1024;
    if (content_length <= kDrainCap) {
      size_t received = buffer->size() - body_start;
      while (received < content_length) {
        auto n = net::ReadSome(fd, chunk, sizeof(chunk), deadline);
        if (!n.ok() || *n == 0) break;
        received += *n;
        buffer->resize(body_start);  // discard, keep memory bounded
      }
    }
    return HttpReadOutcome::kBodyTooLarge;
  }
  while (buffer->size() - body_start < content_length) {
    auto n = net::ReadSome(fd, chunk, sizeof(chunk), deadline);
    if (!n.ok()) {
      return n.status().code() == StatusCode::kResourceExhausted
                 ? HttpReadOutcome::kTimeout
                 : HttpReadOutcome::kIoError;
    }
    if (*n == 0) return HttpReadOutcome::kMalformed;
    buffer->append(chunk, *n);
  }
  request->body = buffer->substr(body_start, content_length);
  // Keep pipelined bytes beyond this request for the next call.
  buffer->erase(0, body_start + content_length);
  return HttpReadOutcome::kOk;
}

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

Status WriteHttpResponse(const net::Fd& fd, const HttpResponse& response,
                         net::Deadline deadline) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    HttpReasonPhrase(response.status) + "\r\n";
  if (!response.body.empty() || response.status != 204) {
    out += "Content-Type: " + response.content_type + "\r\n";
  }
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  for (const auto& [key, value] : response.headers) {
    out += key + ": " + value + "\r\n";
  }
  if (response.close_connection) out += "Connection: close\r\n";
  out += "\r\n";
  out += response.body;
  return net::WriteAll(fd, out, deadline);
}

Result<HttpResponse> HttpCall(const std::string& host, uint16_t port,
                              const std::string& method,
                              const std::string& target,
                              const std::string& body, int64_t timeout_ms) {
  const net::Deadline deadline = net::DeadlineAfterMs(timeout_ms);
  PRIVBASIS_ASSIGN_OR_RETURN(net::Fd fd,
                             net::ConnectTcp(host, port, deadline));
  std::string request = method + " " + target + " HTTP/1.1\r\n" +
                        "Host: " + host + "\r\n" +
                        "Connection: close\r\n";
  if (!body.empty()) {
    request += "Content-Type: application/json\r\n";
  }
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  request += body;
  PRIVBASIS_RETURN_NOT_OK(net::WriteAll(fd, request, deadline));

  std::string raw;
  char chunk[8192];
  for (;;) {
    PRIVBASIS_ASSIGN_OR_RETURN(size_t n,
                               net::ReadSome(fd, chunk, sizeof(chunk),
                                             deadline));
    if (n == 0) break;
    raw.append(chunk, n);
  }
  const size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    return Status::IoError("truncated HTTP response");
  }
  HttpResponse response;
  const size_t line_end = raw.find("\r\n");
  // "HTTP/1.1 200 OK"
  if (line_end < 12 || raw.compare(0, 5, "HTTP/") != 0) {
    return Status::IoError("malformed HTTP status line");
  }
  response.status = std::atoi(raw.c_str() + 9);
  if (response.status < 100 || response.status > 599) {
    return Status::IoError("malformed HTTP status code");
  }
  // Surface the response headers (the admission tests read Retry-After).
  size_t pos = line_end + 2;
  while (pos < head_end + 2) {
    const size_t next = raw.find("\r\n", pos);
    if (next == std::string::npos || next > head_end) break;
    const std::string_view header(raw.data() + pos, next - pos);
    pos = next + 2;
    const size_t colon = header.find(':');
    if (colon == std::string_view::npos || colon == 0) continue;
    response.headers.emplace_back(
        std::string(Trim(header.substr(0, colon))),
        std::string(Trim(header.substr(colon + 1))));
  }
  response.body = raw.substr(head_end + 4);
  return response;
}

}  // namespace privbasis::server
