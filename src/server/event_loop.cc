#include "server/event_loop.h"

#include <algorithm>

namespace privbasis::server {

namespace {

constexpr uint64_t kListenTag = 0;
constexpr uint64_t kWakeupTag = 1;

/// Largest declared-but-oversized body the loop will discard before
/// answering 413 (closing with unread request bytes in flight turns
/// the close into a RST that can destroy the response). Beyond this the
/// sender is abusive and just gets the reset.
constexpr size_t kDrainCap = 8 * 1024 * 1024;

/// One recv's worth per readiness event pass.
constexpr size_t kReadChunk = 64 * 1024;

}  // namespace

EventLoop::EventLoop(Options options, Hooks hooks)
    : options_(std::move(options)), hooks_(std::move(hooks)) {}

EventLoop::~EventLoop() {
  RequestStop();
  Join();
}

Status EventLoop::Start(net::Fd listen_fd) {
  if (started_) return Status::FailedPrecondition("event loop started");
  PRIVBASIS_ASSIGN_OR_RETURN(epoll_, net::Epoll::Create());
  PRIVBASIS_ASSIGN_OR_RETURN(wakeup_, net::WakeupFd::Create());
  listen_fd_ = std::move(listen_fd);
  PRIVBASIS_RETURN_NOT_OK(
      epoll_.Add(listen_fd_, /*want_read=*/true, /*want_write=*/false,
                 kListenTag));
  PRIVBASIS_RETURN_NOT_OK(
      epoll_.Add(wakeup_.fd(), /*want_read=*/true, /*want_write=*/false,
                 kWakeupTag));
  thread_ = std::thread([this] { Run(); });
  started_ = true;
  return Status::OK();
}

void EventLoop::CompleteRequest(uint64_t conn_id, HttpResponse response) {
  {
    MutexLock lock(completions_mu_);
    completions_.emplace_back(conn_id, std::move(response));
  }
  wakeup_.Signal();
}

void EventLoop::RequestStop() {
  stop_requested_.store(true, std::memory_order_release);
  if (wakeup_.valid()) wakeup_.Signal();
}

void EventLoop::Join() {
  if (!started_ || joined_) return;
  shutdown_.store(true, std::memory_order_release);
  wakeup_.Signal();
  thread_.join();
  joined_ = true;
}

void EventLoop::Run() {
  std::vector<net::EpollEvent> events;
  for (;;) {
    const bool stopping = stop_requested_.load(std::memory_order_acquire);
    const bool shutting_down = shutdown_.load(std::memory_order_acquire);
    ProcessCompletions(/*force_close=*/stopping || shutting_down);
    if (stopping && listen_open_) {
      // Free the port immediately and shed parked clients; connections
      // with a dispatched request or a half-written response get to
      // finish (Join bounds them by their write deadlines).
      if (accepting_) {
        (void)epoll_.Del(listen_fd_);
        accepting_ = false;
      }
      listen_fd_.Close();
      listen_open_ = false;
      std::vector<uint64_t> to_close;
      for (auto& [id, conn] : conns_) {
        if (conn.state == ConnState::kDispatched || !conn.out.empty()) {
          conn.close_after_write = true;
        } else {
          to_close.push_back(id);
        }
      }
      for (uint64_t id : to_close) CloseConn(id);
    }
    if (shutting_down) {
      // Every dispatched request has completed by the Join() contract,
      // so anything without pending output is done or orphaned.
      std::vector<uint64_t> to_close;
      for (auto& [id, conn] : conns_) {
        conn.close_after_write = true;
        if (conn.out_off >= conn.out.size()) to_close.push_back(id);
      }
      for (uint64_t id : to_close) CloseConn(id);
    }
    SweepDeadlines();
    if (shutting_down && conns_.empty()) return;
    if (!epoll_.Wait(NextTimeoutMs(), &events).ok()) return;
    for (const auto& ev : events) {
      if (ev.tag == kWakeupTag) {
        wakeup_.Drain();
        continue;
      }
      if (ev.tag == kListenTag) {
        DoAccept();
        continue;
      }
      auto it = conns_.find(ev.tag);
      if (it == conns_.end()) continue;  // closed earlier this batch
      if (ev.readable || ev.error) {
        HandleReadable(ev.tag, it->second);
        it = conns_.find(ev.tag);
        if (it == conns_.end()) continue;
      }
      if (ev.writable) HandleWritable(ev.tag, it->second);
    }
  }
}

void EventLoop::DoAccept() {
  for (;;) {
    auto accepted = net::AcceptNonBlocking(listen_fd_);
    if (!accepted.ok()) {
      // Transient resource exhaustion (EMFILE/ENFILE/ENOBUFS under
      // connection load) must not kill the loop: park the listen fd
      // and retry after a tick — the backlog absorbs clients meanwhile.
      if (accepting_) {
        (void)epoll_.Del(listen_fd_);
        accepting_ = false;
      }
      accept_backoff_ = true;
      accept_retry_at_ =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(50);
      return;
    }
    if (!accepted->valid()) return;  // drained the pending queue
    const uint64_t id = next_conn_id_++;
    Conn conn;
    conn.id = id;
    conn.fd = std::move(*accepted);
    // The idle keep-alive window: a connection that never sends a
    // request is closed silently after one request deadline.
    ArmDeadline(conn, options_.request_deadline_ms);
    if (!epoll_.Add(conn.fd, /*want_read=*/true, /*want_write=*/false, id)
             .ok()) {
      continue;  // drop it; the Fd closes on scope exit
    }
    conns_.emplace(id, std::move(conn));
    if (hooks_.on_connection) hooks_.on_connection();
  }
}

void EventLoop::ProcessCompletions(bool force_close) {
  std::vector<std::pair<uint64_t, HttpResponse>> batch;
  {
    MutexLock lock(completions_mu_);
    batch.swap(completions_);
  }
  for (auto& [id, response] : batch) {
    auto it = conns_.find(id);
    if (it == conns_.end()) continue;  // connection died while computing
    Conn& conn = it->second;
    conn.state = ConnState::kIdle;
    ++conn.served;
    if (force_close ||
        conn.served >= options_.max_requests_per_connection) {
      response.close_connection = true;
    }
    (void)SendResponse(id, conn, std::move(response));
  }
}

void EventLoop::HandleReadable(uint64_t id, Conn& conn) {
  for (;;) {
    auto event = net::ReadAvailable(conn.fd, &conn.in, kReadChunk);
    if (!event.ok()) {
      CloseConn(id);
      return;
    }
    if (*event == net::ReadEvent::kWouldBlock) break;
    if (*event == net::ReadEvent::kEof) {
      conn.peer_eof = true;
      if (conn.state == ConnState::kDraining) {
        // Client gave up mid-body: answer the deferred 413 anyway.
        HttpResponse response = std::move(conn.deferred);
        response.close_connection = true;
        conn.state = ConnState::kIdle;
        (void)SendResponse(id, conn, std::move(response));
        return;
      }
      if (conn.state == ConnState::kDispatched) {
        conn.close_after_write = true;  // deliver, then close
        UpdateInterest(conn);
        return;
      }
      if (!conn.in.empty()) {
        // EOF mid-request — parity with the blocking reader's 400.
        HttpResponse response =
            hooks_.error_response(HttpReadOutcome::kMalformed);
        response.close_connection = true;
        conn.state = ConnState::kIdle;
        conn.in.clear();
        (void)SendResponse(id, conn, std::move(response));
        return;
      }
      if (conn.out_off < conn.out.size()) {
        conn.close_after_write = true;  // finish the flush first
        UpdateInterest(conn);
        return;
      }
      CloseConn(id);  // clean EOF between requests
      return;
    }
    // kData.
    if (conn.state == ConnState::kDraining) {
      const size_t take = std::min(conn.in.size(), conn.drain_remaining);
      conn.in.erase(0, take);
      conn.drain_remaining -= take;
      if (conn.drain_remaining == 0) {
        HttpResponse response = std::move(conn.deferred);
        response.close_connection = true;
        conn.state = ConnState::kIdle;
        conn.has_deadline = false;
        if (!SendResponse(id, conn, std::move(response))) return;
      }
      continue;
    }
    if (conn.state == ConnState::kIdle && !conn.in.empty()) {
      // First byte of a new request: the 408 deadline starts now (but
      // a pending response flush keeps its write deadline — a fresh
      // read window is armed when the flush completes).
      conn.state = ConnState::kReading;
      if (conn.out_off >= conn.out.size()) {
        ArmDeadline(conn, options_.request_deadline_ms);
      }
    }
  }
  (void)TryParse(id, conn);
}

void EventLoop::HandleWritable(uint64_t id, Conn& conn) {
  (void)FlushWrites(id, conn);
}

bool EventLoop::TryParse(uint64_t id, Conn& conn) {
  // One response at a time: pipelined requests wait for the previous
  // flush (FlushWrites re-enters here when it completes).
  if (conn.out_off < conn.out.size()) return true;
  if (conn.state != ConnState::kIdle && conn.state != ConnState::kReading) {
    return true;
  }
  if (conn.in.empty()) return true;
  HttpRequest request;
  const HttpParseResult parsed =
      ParseHttpRequest(&conn.in, options_.limits, &request);
  switch (parsed.outcome) {
    case HttpParseOutcome::kNeedMore:
      if (conn.peer_eof) {
        HttpResponse response =
            hooks_.error_response(HttpReadOutcome::kMalformed);
        response.close_connection = true;
        conn.state = ConnState::kIdle;
        conn.in.clear();
        return SendResponse(id, conn, std::move(response));
      }
      return true;
    case HttpParseOutcome::kOk:
      conn.state = ConnState::kDispatched;
      conn.has_deadline = false;
      UpdateInterest(conn);  // park read interest while in flight
      hooks_.dispatch(id, std::move(request));
      return true;
    case HttpParseOutcome::kMalformed: {
      HttpResponse response =
          hooks_.error_response(HttpReadOutcome::kMalformed);
      response.close_connection = true;
      conn.state = ConnState::kIdle;
      conn.in.clear();
      return SendResponse(id, conn, std::move(response));
    }
    case HttpParseOutcome::kHeaderTooLarge: {
      HttpResponse response =
          hooks_.error_response(HttpReadOutcome::kHeaderTooLarge);
      response.close_connection = true;
      conn.state = ConnState::kIdle;
      conn.in.clear();
      return SendResponse(id, conn, std::move(response));
    }
    case HttpParseOutcome::kBodyTooLarge: {
      HttpResponse response =
          hooks_.error_response(HttpReadOutcome::kBodyTooLarge);
      response.close_connection = true;
      if (parsed.drain_bytes == 0 || parsed.drain_bytes > kDrainCap ||
          conn.peer_eof) {
        conn.state = ConnState::kIdle;
        return SendResponse(id, conn, std::move(response));
      }
      conn.state = ConnState::kDraining;
      conn.drain_remaining = parsed.drain_bytes;
      conn.deferred = std::move(response);
      // The drain rides the request deadline; expiry sends the 413
      // regardless (SweepDeadlines).
      ArmDeadline(conn, options_.request_deadline_ms);
      return true;
    }
  }
  return true;
}

bool EventLoop::SendResponse(uint64_t id, Conn& conn,
                             HttpResponse response) {
  conn.close_after_write =
      conn.close_after_write || response.close_connection;
  // close_connection must be final before serializing — it decides the
  // Connection: close header.
  response.close_connection = conn.close_after_write;
  conn.out.append(SerializeHttpResponse(response));
  ArmDeadline(conn, options_.request_deadline_ms);  // write deadline
  return FlushWrites(id, conn);
}

bool EventLoop::FlushWrites(uint64_t id, Conn& conn) {
  while (conn.out_off < conn.out.size()) {
    auto n = net::WriteSome(
        conn.fd, std::string_view(conn.out).substr(conn.out_off));
    if (!n.ok()) {
      CloseConn(id);
      return false;
    }
    if (*n == 0) break;  // socket buffer full; EPOLLOUT resumes us
    conn.out_off += *n;
  }
  if (conn.out_off < conn.out.size()) {
    UpdateInterest(conn);
    return true;
  }
  conn.out.clear();
  conn.out_off = 0;
  if (conn.close_after_write) {
    CloseConn(id);
    return false;
  }
  // Response delivered: back to waiting (idle window) or already mid-
  // request from pipelined bytes (fresh read window).
  ArmDeadline(conn, options_.request_deadline_ms);
  UpdateInterest(conn);
  return TryParse(id, conn);
}

void EventLoop::UpdateInterest(Conn& conn) {
  const bool want_read = !conn.peer_eof && !conn.close_after_write &&
                         conn.state != ConnState::kDispatched;
  const bool want_write = conn.out_off < conn.out.size();
  if (want_read == conn.want_read && want_write == conn.want_write) return;
  conn.want_read = want_read;
  conn.want_write = want_write;
  (void)epoll_.Mod(conn.fd, want_read, want_write, conn.id);
}

void EventLoop::ArmDeadline(Conn& conn, int64_t ms) {
  conn.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  conn.has_deadline = true;
}

void EventLoop::CloseConn(uint64_t id) {
  // Erasing closes the fd, which deregisters it from epoll (never
  // dup'ed). Ids are monotonic, so stale events can't alias a new conn.
  conns_.erase(id);
}

void EventLoop::SweepDeadlines() {
  const auto now = std::chrono::steady_clock::now();
  if (accept_backoff_ && now >= accept_retry_at_) {
    accept_backoff_ = false;
    if (listen_open_ && !accepting_) {
      accepting_ = epoll_
                       .Add(listen_fd_, /*want_read=*/true,
                            /*want_write=*/false, kListenTag)
                       .ok();
    }
  }
  std::vector<uint64_t> expired;
  for (const auto& [id, conn] : conns_) {
    if (conn.has_deadline && now >= conn.deadline) expired.push_back(id);
  }
  for (uint64_t id : expired) {
    auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    Conn& conn = it->second;
    conn.has_deadline = false;
    if (conn.out_off < conn.out.size()) {
      CloseConn(id);  // write deadline: the client stopped reading
      continue;
    }
    switch (conn.state) {
      case ConnState::kIdle:
        CloseConn(id);  // idle keep-alive timeout: close silently
        break;
      case ConnState::kReading: {
        HttpResponse response =
            hooks_.error_response(HttpReadOutcome::kTimeout);
        response.close_connection = true;
        conn.state = ConnState::kIdle;
        conn.in.clear();
        (void)SendResponse(id, conn, std::move(response));
        break;
      }
      case ConnState::kDraining: {
        HttpResponse response = std::move(conn.deferred);
        response.close_connection = true;
        conn.state = ConnState::kIdle;
        (void)SendResponse(id, conn, std::move(response));
        break;
      }
      case ConnState::kDispatched:
        break;  // no loop deadline while the handler owns the request
    }
  }
}

int EventLoop::NextTimeoutMs() const {
  const auto now = std::chrono::steady_clock::now();
  int64_t best = 1000;  // liveness backstop
  const auto consider = [&](std::chrono::steady_clock::time_point when) {
    const int64_t ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(when - now)
            .count() +
        1;  // round up so the sweep sees the deadline as expired
    best = std::clamp<int64_t>(ms, 0, best);
  };
  if (accept_backoff_) consider(accept_retry_at_);
  for (const auto& [id, conn] : conns_) {
    if (conn.has_deadline) consider(conn.deadline);
  }
  return static_cast<int>(best);
}

}  // namespace privbasis::server
