// Epoll readiness loop for the query server: ONE I/O thread owns every
// connection fd (plus the listening socket), so a parked keep-alive
// client costs a file descriptor instead of a pool worker — the
// thread-per-connection model it replaces let an idle-client storm
// starve real queries out of the worker pool.
//
// Division of labor:
//   * The loop thread does all socket I/O: non-blocking accepts,
//     incremental reads feeding the pure-buffer ParseHttpRequest,
//     write-queue flushes on EPOLLOUT, and every per-connection timer
//     (idle keep-alive window, mid-request 408 deadline, response
//     write deadline, oversized-body drain).
//   * Only a COMPLETE parsed request crosses to the owner via
//     `hooks.dispatch` (called on the loop thread; hand off fast).
//     The owner answers — from any thread — with CompleteRequest().
//   * One request in flight per connection: read interest is parked
//     while dispatched, and pipelined bytes already buffered are
//     parsed as soon as the previous response finishes flushing.
//
// Protocol errors never reach the dispatcher: the loop asks
// `hooks.error_response` to render the 400/408/413/431 and closes
// after writing it, preserving the pre-loop per-request contract
// (tests/server_test.cc pins it down).
#ifndef PRIVBASIS_SERVER_EVENT_LOOP_H_
#define PRIVBASIS_SERVER_EVENT_LOOP_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/net.h"
#include "common/status.h"
#include "server/http.h"

namespace privbasis::server {

class EventLoop {
 public:
  struct Options {
    HttpLimits limits;
    /// Bounds each phase of a connection separately: the idle
    /// keep-alive window, reading one request, and writing one
    /// response (a slow successful query whose ε was committed still
    /// gets a full window to be delivered).
    int64_t request_deadline_ms = 30'000;
    /// Requests served per keep-alive connection before
    /// Connection: close.
    size_t max_requests_per_connection = 1024;
  };

  struct Hooks {
    /// A complete request, on the loop thread. The callee must
    /// eventually CompleteRequest(conn_id, ...) — synchronously or from
    /// any other thread.
    std::function<void(uint64_t conn_id, HttpRequest request)> dispatch;
    /// A connection was accepted (loop thread; counters only).
    std::function<void()> on_connection;
    /// Renders the response for a protocol-level failure (kTimeout,
    /// kMalformed, kHeaderTooLarge, kBodyTooLarge). The loop closes the
    /// connection after writing it.
    std::function<HttpResponse(HttpReadOutcome)> error_response;
  };

  EventLoop(Options options, Hooks hooks);
  /// RequestStop + Join if still running.
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Takes ownership of the (already listening) socket and starts the
  /// I/O thread.
  Status Start(net::Fd listen_fd);

  /// Thread-safe: queues `response` for the request dispatched on
  /// `conn_id` and wakes the loop. Dropped silently if the connection
  /// died in the meantime (the client is gone either way).
  void CompleteRequest(uint64_t conn_id, HttpResponse response);

  /// Stops accepting (closes the listen socket, freeing the port) and
  /// closes idle / mid-read connections. Connections with a dispatched
  /// request or a partially written response stay for Join() to finish.
  void RequestStop();

  /// Flushes remaining responses (each bounded by its write deadline),
  /// closes everything, and joins the loop thread. Call only after all
  /// dispatched requests have completed (e.g. the worker pool joined) —
  /// a completion arriving after Join starts is dropped with its
  /// connection. Idempotent.
  void Join();

 private:
  /// What the connection is between I/O events. Orthogonally to the
  /// state, `out` may hold a partially flushed response.
  enum class ConnState {
    kIdle,      ///< between requests (in-buffer empty or pipelined tail)
    kReading,   ///< partial request buffered; 408 deadline armed
    kDispatched,  ///< request handed off; read interest parked
    kDraining,  ///< discarding an oversized body before the 413
  };

  struct Conn {
    uint64_t id = 0;  ///< epoll tag; never reused
    net::Fd fd;
    std::string in;
    std::string out;
    size_t out_off = 0;
    ConnState state = ConnState::kIdle;
    size_t served = 0;
    size_t drain_remaining = 0;
    HttpResponse deferred;  ///< the 413 to send once draining finishes
    bool close_after_write = false;
    bool peer_eof = false;
    // Cached epoll interest so Mod is only issued on change.
    bool want_read = true;
    bool want_write = false;
    std::chrono::steady_clock::time_point deadline;
    bool has_deadline = false;
  };

  void Run();
  void DoAccept();
  void ProcessCompletions(bool force_close);
  void HandleReadable(uint64_t id, Conn& conn);
  void HandleWritable(uint64_t id, Conn& conn);
  /// Parses buffered bytes; may dispatch, answer an error, or start a
  /// drain. Returns false if the connection was closed.
  bool TryParse(uint64_t id, Conn& conn);
  /// Serializes `response` onto the write queue (close_connection must
  /// be final — it decides the Connection: close header) and attempts
  /// an optimistic flush.
  bool SendResponse(uint64_t id, Conn& conn, HttpResponse response);
  /// Flushes as much of `out` as the socket accepts; on completion runs
  /// the close-or-next-request transition. Returns false if closed.
  bool FlushWrites(uint64_t id, Conn& conn);
  void UpdateInterest(Conn& conn);
  void ArmDeadline(Conn& conn, int64_t ms);
  void CloseConn(uint64_t id);
  /// Closes expired connections; answers 408/413 where the contract
  /// says so. Also re-arms accepting after an EMFILE backoff.
  void SweepDeadlines();
  int NextTimeoutMs() const;

  Options options_;
  Hooks hooks_;
  net::Fd listen_fd_;
  net::Epoll epoll_;
  net::WakeupFd wakeup_;
  std::thread thread_;
  bool started_ = false;
  bool joined_ = false;

  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> shutdown_{false};

  Mutex completions_mu_;
  std::vector<std::pair<uint64_t, HttpResponse>> completions_
      PB_GUARDED_BY(completions_mu_);

  // Loop-thread state: touched only by the single I/O thread (Run() and
  // the handlers it calls), so no lock guards it — the thread_ join in
  // Join() is the synchronization point.
  std::unordered_map<uint64_t, Conn> conns_;
  uint64_t next_conn_id_ = 2;  // 0 = listen socket, 1 = wakeup
  bool accepting_ = true;      // listen fd registered with epoll
  bool listen_open_ = true;
  std::chrono::steady_clock::time_point accept_retry_at_{};
  bool accept_backoff_ = false;
};

}  // namespace privbasis::server

#endif  // PRIVBASIS_SERVER_EVENT_LOOP_H_
