// DatasetRegistry: the server's id → Dataset handle table.
//
// Registration hands out opaque "ds-N" ids; lookups return the shared_ptr
// itself, so eviction is safe by construction — a Remove() while queries
// are in flight only drops the registry's reference, and the last
// in-flight Engine::Run keeps the Dataset (and its Accountant ledger)
// alive until it finishes. Nothing is ever invalidated under a running
// query.
//
// The registry also owns the policy for *building* datasets out of wire
// requests (file path, inline transactions, or synthetic profile) so the
// HTTP layer stays a thin router.
#ifndef PRIVBASIS_SERVER_DATASET_REGISTRY_H_
#define PRIVBASIS_SERVER_DATASET_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/json.h"
#include "common/status.h"
#include "engine/dataset.h"

namespace privbasis::server {

/// Caps on wire-built datasets (all registration input is untrusted). A
/// namespace-scope struct — like DatasetOptions — so it can appear as a
/// `= {}` default argument inside the class body.
struct DatasetRegistryLimits {
  size_t max_inline_transactions = 1 << 20;
  double max_profile_scale = 10.0;
  /// Ceiling on wire-registered datasets held at once (each one pins a
  /// full TransactionDatabase in memory forever until DELETEd, so an
  /// unbounded count is a one-request-at-a-time OOM). In-process
  /// Register() calls (tests, operator preloads) are not counted
  /// against it.
  size_t max_datasets = 64;
  /// Whether {"path": ...} registrations are accepted. OFF by default:
  /// a server-side file read is an operator decision (arbitrary-path
  /// probing, unbounded file sizes), opted into via the server binary's
  /// --allow-path-datasets. Operator preloads bypass the wire entirely
  /// (Dataset::FromFimiFile + Register).
  bool allow_paths = false;
};

class DatasetRegistry {
 public:
  using Limits = DatasetRegistryLimits;

  explicit DatasetRegistry(Limits limits = {}) : limits_(limits) {}

  DatasetRegistry(const DatasetRegistry&) = delete;
  DatasetRegistry& operator=(const DatasetRegistry&) = delete;

  /// Runs for every new registration BEFORE the dataset becomes
  /// findable, under the registry lock — the durability hook (the
  /// StateStore persists the snapshot + manifest and attaches the budget
  /// journal here). A failing hook fails the registration: no dataset
  /// may serve queries whose ε spend the next boot would forget.
  using RegisterHook =
      std::function<Status(const std::string& id,
                           const std::shared_ptr<Dataset>& dataset)>;

  /// Installs the hook (nullptr = none). Set before serving starts; not
  /// synchronized against concurrent registrations.
  void SetRegisterHook(RegisterHook hook) { hook_ = std::move(hook); }

  /// Runs for EVERY dataset becoming findable — wire registrations,
  /// operator preloads, and recovered ones alike (unlike the durability
  /// hook, which recovered datasets skip). Runs after the durability
  /// hook, still before the handle is findable; a failure fails the
  /// registration. The coordinator uses this to ship shard slices to its
  /// workers and attach a RemoteShardExecutor.
  void SetAttachHook(RegisterHook hook) { attach_hook_ = std::move(hook); }

  /// Adds a handle, returning its new "ds-N" id. Ids are never reused.
  /// Fails only if the registration hook does.
  Result<std::string> Register(std::shared_ptr<Dataset> dataset);

  /// Adds a handle under a caller-chosen name (operator preloads). Names
  /// must be non-empty, `[A-Za-z0-9._-]`, must not start with "ds-" (the
  /// generated-id namespace), and must be free. Runs the hook.
  Result<std::string> RegisterNamed(const std::string& name,
                                    std::shared_ptr<Dataset> dataset);

  /// Re-adds a dataset recovered from the StateStore: any id shape,
  /// hook skipped (its durable records already exist). Bumps the "ds-N"
  /// counter past recovered generated ids.
  Status RegisterRecovered(const std::string& id,
                           std::shared_ptr<Dataset> dataset);

  /// Seeds the "ds-N" counter (from the recovered manifest). Only moves
  /// it forward.
  void SetNextId(size_t next_id);

  /// A freshly registered handle: the id AND the shared_ptr itself, so
  /// callers never re-look the id up (a concurrent Remove() between
  /// registration and lookup would hand them nullptr).
  struct Registered {
    std::string id;
    std::shared_ptr<Dataset> dataset;
  };

  /// Builds a Dataset from a wire request and registers it. Exactly one
  /// of the source keys must be present:
  ///   {"path": "transactions.dat"}                 FIMI file (gated by
  ///                                                Limits::allow_paths)
  ///   {"transactions": [[1,2,9], [2,9], ...]}      inline
  ///   {"profile": "mushroom", "scale": 0.5}        synthetic profile
  /// plus optional "budget" (total ε; default unlimited), "seed"
  /// (profile generation; default 42), and "threads" (cache-build
  /// parallelism; default the env knob). Unknown keys are rejected.
  Result<Registered> RegisterFromJson(const json::Value& request);

  /// Builds (without registering) a Dataset from the same JSON shape.
  /// With `operator_config` (the server binary's --preload-config), a
  /// "name" key is tolerated (the caller consumes it) and "path" is
  /// allowed regardless of Limits::allow_paths — the config comes from
  /// the operator's command line, not the wire.
  Result<std::shared_ptr<Dataset>> BuildFromJson(const json::Value& request,
                                                 bool operator_config);

  /// The handle for `id`, or nullptr. The returned shared_ptr keeps the
  /// dataset alive independent of later Remove() calls.
  std::shared_ptr<Dataset> Find(const std::string& id) const;

  /// Drops the registry's reference; false when `id` is unknown.
  bool Remove(const std::string& id);

  size_t size() const;
  std::vector<std::string> ids() const;

 private:
  /// Inserts under mu_, running the hook first unless `recovered`.
  Result<std::string> Insert(std::string id,
                             std::shared_ptr<Dataset> dataset,
                             bool recovered) PB_EXCLUDES(mu_);

  Limits limits_;
  /// Both hooks are installed before serving starts (SetRegisterHook /
  /// SetAttachHook docs) and immutable afterwards, so they are read
  /// without mu_.
  RegisterHook hook_;
  RegisterHook attach_hook_;
  mutable Mutex mu_;
  std::map<std::string, std::shared_ptr<Dataset>> datasets_
      PB_GUARDED_BY(mu_);
  size_t next_id_ PB_GUARDED_BY(mu_) = 1;
};

}  // namespace privbasis::server

#endif  // PRIVBASIS_SERVER_DATASET_REGISTRY_H_
