// DatasetRegistry: the server's id → Dataset handle table.
//
// Registration hands out opaque "ds-N" ids; lookups return the shared_ptr
// itself, so eviction is safe by construction — a Remove() while queries
// are in flight only drops the registry's reference, and the last
// in-flight Engine::Run keeps the Dataset (and its Accountant ledger)
// alive until it finishes. Nothing is ever invalidated under a running
// query.
//
// The registry also owns the policy for *building* datasets out of wire
// requests (file path, inline transactions, or synthetic profile) so the
// HTTP layer stays a thin router.
#ifndef PRIVBASIS_SERVER_DATASET_REGISTRY_H_
#define PRIVBASIS_SERVER_DATASET_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "engine/dataset.h"

namespace privbasis::server {

/// Caps on wire-built datasets (all registration input is untrusted). A
/// namespace-scope struct — like DatasetOptions — so it can appear as a
/// `= {}` default argument inside the class body.
struct DatasetRegistryLimits {
  size_t max_inline_transactions = 1 << 20;
  double max_profile_scale = 10.0;
  /// Ceiling on wire-registered datasets held at once (each one pins a
  /// full TransactionDatabase in memory forever until DELETEd, so an
  /// unbounded count is a one-request-at-a-time OOM). In-process
  /// Register() calls (tests, operator preloads) are not counted
  /// against it.
  size_t max_datasets = 64;
  /// Whether {"path": ...} registrations are accepted. OFF by default:
  /// a server-side file read is an operator decision (arbitrary-path
  /// probing, unbounded file sizes), opted into via the server binary's
  /// --allow-path-datasets. Operator preloads bypass the wire entirely
  /// (Dataset::FromFimiFile + Register).
  bool allow_paths = false;
};

class DatasetRegistry {
 public:
  using Limits = DatasetRegistryLimits;

  explicit DatasetRegistry(Limits limits = {}) : limits_(limits) {}

  DatasetRegistry(const DatasetRegistry&) = delete;
  DatasetRegistry& operator=(const DatasetRegistry&) = delete;

  /// Adds a handle, returning its new "ds-N" id. Ids are never reused.
  std::string Register(std::shared_ptr<Dataset> dataset);

  /// A freshly registered handle: the id AND the shared_ptr itself, so
  /// callers never re-look the id up (a concurrent Remove() between
  /// registration and lookup would hand them nullptr).
  struct Registered {
    std::string id;
    std::shared_ptr<Dataset> dataset;
  };

  /// Builds a Dataset from a wire request and registers it. Exactly one
  /// of the source keys must be present:
  ///   {"path": "transactions.dat"}                 FIMI file (gated by
  ///                                                Limits::allow_paths)
  ///   {"transactions": [[1,2,9], [2,9], ...]}      inline
  ///   {"profile": "mushroom", "scale": 0.5}        synthetic profile
  /// plus optional "budget" (total ε; default unlimited), "seed"
  /// (profile generation; default 42), and "threads" (cache-build
  /// parallelism; default the env knob). Unknown keys are rejected.
  Result<Registered> RegisterFromJson(const json::Value& request);

  /// The handle for `id`, or nullptr. The returned shared_ptr keeps the
  /// dataset alive independent of later Remove() calls.
  std::shared_ptr<Dataset> Find(const std::string& id) const;

  /// Drops the registry's reference; false when `id` is unknown.
  bool Remove(const std::string& id);

  size_t size() const;
  std::vector<std::string> ids() const;

 private:
  Limits limits_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Dataset>> datasets_;
  size_t next_id_ = 1;
};

}  // namespace privbasis::server

#endif  // PRIVBASIS_SERVER_DATASET_REGISTRY_H_
