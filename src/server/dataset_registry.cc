#include "server/dataset_registry.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <utility>

#include "data/synthetic.h"
#include "data/transaction_db.h"
#include "server/wire.h"

namespace privbasis::server {

namespace {

Result<SyntheticProfile> ProfileByName(const std::string& name,
                                       double scale) {
  if (name == "retail") return SyntheticProfile::Retail(scale);
  if (name == "mushroom") return SyntheticProfile::Mushroom(scale);
  if (name == "pumsb-star") return SyntheticProfile::PumsbStar(scale);
  if (name == "kosarak") return SyntheticProfile::Kosarak(scale);
  if (name == "aol") return SyntheticProfile::Aol(scale);
  return Status::InvalidArgument("unknown profile \"" + name + "\"");
}

Result<TransactionDatabase> BuildInline(const json::Value& transactions,
                                        size_t max_transactions) {
  PRIVBASIS_ASSIGN_OR_RETURN(const json::Value::Array* rows,
                             transactions.GetArray());
  if (rows->empty()) {
    return Status::InvalidArgument("\"transactions\" must be non-empty");
  }
  if (rows->size() > max_transactions) {
    // A permanent rejection (the request can never succeed), so 400 —
    // not the retryable 429 the budget refusal uses.
    return Status::InvalidArgument(
        "inline dataset exceeds " + std::to_string(max_transactions) +
        " transactions");
  }
  TransactionDatabase::Builder builder(0);
  for (size_t t = 0; t < rows->size(); ++t) {
    PRIVBASIS_ASSIGN_OR_RETURN(const json::Value::Array* row,
                               (*rows)[t].GetArray());
    std::vector<Item> txn;
    txn.reserve(row->size());
    for (const json::Value& item : *row) {
      PRIVBASIS_ASSIGN_OR_RETURN(uint64_t raw, item.GetUint());
      if (raw > std::numeric_limits<Item>::max()) {
        return Status::InvalidArgument("transaction " + std::to_string(t) +
                                       ": item id out of range");
      }
      txn.push_back(static_cast<Item>(raw));
    }
    builder.AddTransaction(txn);
  }
  return std::move(builder).Build();
}

bool ValidDatasetName(const std::string& name) {
  if (name.empty() || name.size() > 128) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) return false;
  }
  // Names double as snapshot filenames in the state dir.
  return name != "." && name != "..";
}

}  // namespace

Result<std::string> DatasetRegistry::Insert(std::string id,
                                            std::shared_ptr<Dataset> dataset,
                                            bool recovered) {
  MutexLock lock(mu_);
  if (datasets_.count(id) > 0) {
    return Status::FailedPrecondition("dataset \"" + id +
                                      "\" is already registered");
  }
  // The durability hook runs BEFORE the map insert: a dataset must never
  // be findable — spendable — until its snapshot, manifest entry, and
  // budget journal binding are durable. Recovered datasets skip it
  // (their durable records are what they were recovered from).
  if (!recovered && hook_ != nullptr) {
    PRIVBASIS_RETURN_NOT_OK(hook_(id, dataset));
  }
  // The attach hook (shard fan-out) runs for recovered datasets too —
  // a dataset reloaded from the state dir must count through the same
  // worker fleet a freshly registered one would.
  if (attach_hook_ != nullptr) {
    PRIVBASIS_RETURN_NOT_OK(attach_hook_(id, dataset));
  }
  datasets_.emplace(id, std::move(dataset));
  return id;
}

Result<std::string> DatasetRegistry::Register(
    std::shared_ptr<Dataset> dataset) {
  std::string id;
  {
    MutexLock lock(mu_);
    id = "ds-" + std::to_string(next_id_++);
  }
  return Insert(std::move(id), std::move(dataset), /*recovered=*/false);
}

Result<std::string> DatasetRegistry::RegisterNamed(
    const std::string& name, std::shared_ptr<Dataset> dataset) {
  if (!ValidDatasetName(name)) {
    return Status::InvalidArgument(
        "dataset name must be 1-128 chars of [A-Za-z0-9._-]: \"" + name +
        "\"");
  }
  if (name.starts_with("ds-")) {
    return Status::InvalidArgument(
        "dataset names must not start with \"ds-\" (reserved for "
        "generated ids): \"" + name + "\"");
  }
  return Insert(name, std::move(dataset), /*recovered=*/false);
}

Status DatasetRegistry::RegisterRecovered(const std::string& id,
                                          std::shared_ptr<Dataset> dataset) {
  if (id.starts_with("ds-")) {
    const size_t n = std::strtoull(id.c_str() + 3, nullptr, 10);
    SetNextId(n + 1);
  }
  return Insert(id, std::move(dataset), /*recovered=*/true).status();
}

void DatasetRegistry::SetNextId(size_t next_id) {
  MutexLock lock(mu_);
  next_id_ = std::max(next_id_, next_id);
}

Result<std::shared_ptr<Dataset>> DatasetRegistry::BuildFromJson(
    const json::Value& request, bool operator_config) {
  PRIVBASIS_ASSIGN_OR_RETURN(const json::Value::Object* obj,
                             request.GetObject());
  // Strict keys, like every other wire object: a typoed "budget" must
  // 400, not silently register an unlimited-ε dataset. Operator configs
  // additionally carry "name" (consumed by the caller, not here).
  if (operator_config) {
    PRIVBASIS_RETURN_NOT_OK(CheckKeys(
        *obj,
        {"name", "path", "transactions", "profile", "scale", "seed",
         "budget", "threads"},
        "dataset"));
  } else {
    PRIVBASIS_RETURN_NOT_OK(CheckKeys(
        *obj,
        {"path", "transactions", "profile", "scale", "seed", "budget",
         "threads"},
        "dataset"));
  }
  const json::Value* path = request.Find("path");
  const json::Value* transactions = request.Find("transactions");
  const json::Value* profile = request.Find("profile");
  const int sources = (path != nullptr) + (transactions != nullptr) +
                      (profile != nullptr);
  if (sources != 1) {
    return Status::InvalidArgument(
        "exactly one of \"path\", \"transactions\", \"profile\" required");
  }
  // "scale"/"seed" only mean something for profile generation; accepting
  // them elsewhere would silently register a dataset with different
  // properties than the client believes (the same fail-open the strict
  // key check exists to prevent).
  if (profile == nullptr &&
      (request.Find("scale") != nullptr || request.Find("seed") != nullptr)) {
    return Status::InvalidArgument(
        "\"scale\"/\"seed\" apply only to \"profile\" registrations");
  }
  Dataset::Options options;
  if (const json::Value* budget = request.Find("budget")) {
    PRIVBASIS_ASSIGN_OR_RETURN(options.total_epsilon, budget->GetDouble());
    if (!(options.total_epsilon > 0.0)) {
      return Status::InvalidArgument("\"budget\" must be > 0");
    }
  }
  if (const json::Value* threads = request.Find("threads")) {
    PRIVBASIS_ASSIGN_OR_RETURN(uint64_t n, threads->GetUint());
    options.num_threads = static_cast<size_t>(n);
  }

  std::shared_ptr<Dataset> dataset;
  if (path != nullptr) {
    // Operator configs come from the server's own command line, not the
    // wire — the path gate protects against remote file probing only.
    if (!limits_.allow_paths && !operator_config) {
      return Status::InvalidArgument(
          "\"path\" registration is disabled on this server (start it "
          "with --allow-path-datasets, or preload datasets at startup)");
    }
    PRIVBASIS_ASSIGN_OR_RETURN(std::string file, path->GetString());
    PRIVBASIS_ASSIGN_OR_RETURN(dataset,
                               Dataset::FromFimiFile(file, options));
  } else if (transactions != nullptr) {
    PRIVBASIS_ASSIGN_OR_RETURN(
        TransactionDatabase db,
        BuildInline(*transactions, limits_.max_inline_transactions));
    dataset = Dataset::Create(std::move(db), options);
  } else {
    PRIVBASIS_ASSIGN_OR_RETURN(std::string name, profile->GetString());
    double scale = 1.0;
    if (const json::Value* s = request.Find("scale")) {
      PRIVBASIS_ASSIGN_OR_RETURN(scale, s->GetDouble());
    }
    if (!(scale > 0.0) || scale > limits_.max_profile_scale) {
      return Status::InvalidArgument(
          "\"scale\" must be in (0, " +
          std::to_string(limits_.max_profile_scale) + "]");
    }
    uint64_t seed = 42;
    if (const json::Value* s = request.Find("seed")) {
      PRIVBASIS_ASSIGN_OR_RETURN(seed, s->GetUint());
    }
    PRIVBASIS_ASSIGN_OR_RETURN(SyntheticProfile prof,
                               ProfileByName(name, scale));
    PRIVBASIS_ASSIGN_OR_RETURN(dataset,
                               Dataset::FromProfile(prof, seed, options));
  }
  return dataset;
}

Result<DatasetRegistry::Registered> DatasetRegistry::RegisterFromJson(
    const json::Value& request) {
  // Bound the registry BEFORE building (the expensive part): each
  // registered dataset is pinned in memory until DELETEd, so the count
  // cap is what stands between a registration loop and an OOM. 429:
  // retryable once something is evicted.
  if (size() >= limits_.max_datasets) {
    return Status::ResourceExhausted(
        "dataset registry is full (" +
        std::to_string(limits_.max_datasets) +
        " handles); DELETE one first");
  }
  PRIVBASIS_ASSIGN_OR_RETURN(
      std::shared_ptr<Dataset> dataset,
      BuildFromJson(request, /*operator_config=*/false));
  PRIVBASIS_ASSIGN_OR_RETURN(std::string id, Register(dataset));
  return Registered{std::move(id), std::move(dataset)};
}

std::shared_ptr<Dataset> DatasetRegistry::Find(const std::string& id) const {
  MutexLock lock(mu_);
  auto it = datasets_.find(id);
  return it == datasets_.end() ? nullptr : it->second;
}

bool DatasetRegistry::Remove(const std::string& id) {
  MutexLock lock(mu_);
  return datasets_.erase(id) > 0;
}

size_t DatasetRegistry::size() const {
  MutexLock lock(mu_);
  return datasets_.size();
}

std::vector<std::string> DatasetRegistry::ids() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(datasets_.size());
  for (const auto& [id, dataset] : datasets_) out.push_back(id);
  return out;
}

}  // namespace privbasis::server
