// BudgetWal: the write-ahead ledger that makes ε spend survive crashes.
//
// File layout: an 8-byte header ("PBWAL" + 3-digit version) followed by
// CRC32-framed records:
//
//   [u32 LE payload_len][u32 LE crc32(payload)][payload]
//
// Payload: u8 record type, u64 LE txn id, then per type:
//   kReserve(1) / kCommit(2): f64 LE epsilon (IEEE bit pattern),
//       u16 LE dataset-id length + bytes, u16 LE label length + bytes
//   kAbort(3): nothing further
//
// Protocol (driven by the Accountant through WalAccountantJournal):
//   * a query RESERVEs its worst-case ε before any noise is drawn;
//   * success COMMITs the actual spend (≤ the reservation);
//   * failure ABORTs, which replays as a FULL charge of the reservation.
//
// Boot-time replay rebuilds per-dataset spent ε. The rules are
// deliberately one-sided — recovery may over-charge, never refund:
//   * commit → charge the committed actual;
//   * abort → charge the full reservation;
//   * reservation with no resolution (in-flight at crash) → charge the
//     full reservation;
//   * a torn tail (partial frame / CRC mismatch from a crash mid-write)
//     is truncated at the last valid frame — but an unknown record TYPE
//     under a valid CRC refuses recovery (version skew: a newer writer's
//     records must not be silently dropped).
//
// Fsync policy (--fsync): kAlways syncs every record; kCommit (default)
// syncs at commit/abort — an acked query is durable, because syncing the
// commit record also flushes its reserve record; kNever leaves
// durability to the OS (tests/throughput).
//
// A failed append self-heals by truncating back to the last good offset,
// so one ENOSPC/torn write cannot poison later appends; if even the
// truncation fails, the WAL refuses all further appends (fail closed).
#ifndef PRIVBASIS_STORE_WAL_H_
#define PRIVBASIS_STORE_WAL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/annotations.h"
#include "common/status.h"
#include "engine/accountant.h"
#include "store/io.h"

namespace privbasis::store {

/// When the WAL reaches the platter. See file comment.
enum class FsyncMode { kAlways, kCommit, kNever };

/// Parses "always"/"commit"/"never" (the --fsync flag).
Result<FsyncMode> ParseFsyncMode(const std::string& name);
const char* FsyncModeName(FsyncMode mode);

/// One decoded WAL record (the golden-file tests encode/decode these
/// byte-exactly).
struct WalRecord {
  enum class Type : uint8_t { kReserve = 1, kCommit = 2, kAbort = 3 };
  Type type = Type::kReserve;
  uint64_t txn = 0;
  /// kReserve: the reservation; kCommit: the actual spend.
  double epsilon = 0.0;
  std::string dataset;  // kReserve/kCommit
  std::string label;    // kReserve/kCommit
};

/// Record payload bytes (no frame header).
std::string EncodeWalRecord(const WalRecord& record);

/// Wraps a payload in the length+CRC frame header.
std::string EncodeWalFrame(std::string_view payload);

/// Decodes a payload produced by EncodeWalRecord. Unknown types fail
/// with kFailedPrecondition (version skew), malformed bytes with
/// kInvalidArgument.
Result<WalRecord> DecodeWalRecord(std::string_view payload);

/// What replay reconstructed for one dataset ledger.
struct WalRecoveredLedger {
  double spent = 0.0;
  std::vector<Accountant::Entry> entries;
};

struct WalReplay {
  /// dataset id → recovered committed ledger.
  std::map<std::string, WalRecoveredLedger> ledgers;
  uint64_t next_txn = 1;
  uint64_t frames = 0;          ///< valid frames replayed
  uint64_t in_flight = 0;       ///< crash-aborted open reservations
  bool truncated_tail = false;  ///< torn bytes were dropped at open
};

class BudgetWal {
 public:
  /// Opens (creating if absent) and replays `path`. A torn tail is
  /// truncated at the last valid frame; a header from a different
  /// format version refuses with kFailedPrecondition.
  static Result<std::unique_ptr<BudgetWal>> Open(const std::string& path,
                                                 FsyncMode mode);

  /// The replay performed by Open().
  const WalReplay& recovered() const { return replay_; }
  FsyncMode fsync_mode() const { return mode_; }

  /// Appends + (per policy) syncs one record. AppendReserve assigns and
  /// returns the transaction id. Thread-safe; one WAL serves every
  /// dataset ledger in the state dir.
  Result<uint64_t> AppendReserve(const std::string& dataset, double epsilon,
                                 const std::string& label);
  Status AppendCommit(uint64_t txn, const std::string& dataset,
                      double actual, const std::string& label);
  Status AppendAbort(uint64_t txn);

 private:
  BudgetWal(AppendFile file, FsyncMode mode, WalReplay replay,
            uint64_t good_size)
      : file_(std::move(file)),
        mode_(mode),
        replay_(std::move(replay)),
        good_size_(good_size),
        next_txn_(replay_.next_txn) {}

  /// Appends one frame, self-healing a failed write by truncating back
  /// to the last good offset. Callers hold mu_ across frame encode +
  /// append so records are assigned and written in txn order.
  Status AppendFrame(const std::string& frame, bool is_sync_point)
      PB_REQUIRES(mu_);

  Mutex mu_;
  AppendFile file_ PB_GUARDED_BY(mu_);
  const FsyncMode mode_;
  const WalReplay replay_;
  uint64_t good_size_ PB_GUARDED_BY(mu_) = 0;  ///< bytes known fully written
  uint64_t next_txn_ PB_GUARDED_BY(mu_) = 1;
  bool poisoned_ PB_GUARDED_BY(mu_) =
      false;  ///< truncation after a failed append failed too
};

/// The per-dataset AccountantJournal adapter: binds one dataset id to
/// the shared WAL. Attach via Accountant::AttachJournal.
class WalAccountantJournal : public AccountantJournal {
 public:
  WalAccountantJournal(std::shared_ptr<BudgetWal> wal, std::string dataset)
      : wal_(std::move(wal)), dataset_(std::move(dataset)) {}

  Result<uint64_t> Reserve(double epsilon, const std::string& label) override {
    return wal_->AppendReserve(dataset_, epsilon, label);
  }
  Status Commit(uint64_t txn, double actual,
                const std::string& label) override {
    return wal_->AppendCommit(txn, dataset_, actual, label);
  }
  Status Abort(uint64_t txn) override { return wal_->AppendAbort(txn); }

 private:
  std::shared_ptr<BudgetWal> wal_;
  std::string dataset_;
};

}  // namespace privbasis::store

#endif  // PRIVBASIS_STORE_WAL_H_
