#include "store/wal.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "common/crc32.h"

namespace privbasis::store {

namespace {

// "PBWAL" identifies the file; "001" is the format version. Bumping the
// version refuses older binaries outright rather than letting them
// misread (or worse, truncate) newer ledgers.
constexpr char kWalMagic[] = "PBWAL";
constexpr char kWalHeader[] = "PBWAL001";
constexpr size_t kWalHeaderSize = 8;
constexpr size_t kFrameHeaderSize = 8;  // u32 len + u32 crc
// Payloads are a handful of bytes plus two ≤64KiB strings; anything
// larger is garbage, not a frame.
constexpr uint32_t kMaxPayload = 1u << 20;

void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutF64(std::string* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

/// Little-endian cursor over a payload; every Take checks bounds.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  bool TakeU8(uint8_t* v) {
    if (bytes_.size() < 1) return false;
    *v = static_cast<uint8_t>(bytes_[0]);
    bytes_.remove_prefix(1);
    return true;
  }
  bool TakeU16(uint16_t* v) {
    if (bytes_.size() < 2) return false;
    *v = static_cast<uint16_t>(static_cast<uint8_t>(bytes_[0]) |
                               (static_cast<uint8_t>(bytes_[1]) << 8));
    bytes_.remove_prefix(2);
    return true;
  }
  bool TakeU64(uint64_t* v) {
    if (bytes_.size() < 8) return false;
    uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[i])) << (8 * i);
    }
    *v = out;
    bytes_.remove_prefix(8);
    return true;
  }
  bool TakeF64(double* v) {
    uint64_t bits;
    if (!TakeU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  bool TakeString(std::string* v) {
    uint16_t len;
    if (!TakeU16(&len) || bytes_.size() < len) return false;
    v->assign(bytes_.data(), len);
    bytes_.remove_prefix(len);
    return true;
  }
  bool empty() const { return bytes_.empty(); }

 private:
  std::string_view bytes_;
};

uint32_t ReadU32(const char* p) {
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return out;
}

struct OpenReservation {
  std::string dataset;
  double epsilon = 0.0;
  std::string label;
};

}  // namespace

Result<FsyncMode> ParseFsyncMode(const std::string& name) {
  if (name == "always") return FsyncMode::kAlways;
  if (name == "commit") return FsyncMode::kCommit;
  if (name == "never") return FsyncMode::kNever;
  return Status::InvalidArgument("unknown fsync mode '" + name +
                                 "' (want always|commit|never)");
}

const char* FsyncModeName(FsyncMode mode) {
  switch (mode) {
    case FsyncMode::kAlways:
      return "always";
    case FsyncMode::kCommit:
      return "commit";
    case FsyncMode::kNever:
      return "never";
  }
  return "?";
}

std::string EncodeWalRecord(const WalRecord& record) {
  std::string out;
  out.push_back(static_cast<char>(record.type));
  PutU64(&out, record.txn);
  if (record.type == WalRecord::Type::kReserve ||
      record.type == WalRecord::Type::kCommit) {
    PutF64(&out, record.epsilon);
    PutU16(&out, static_cast<uint16_t>(record.dataset.size()));
    out += record.dataset;
    PutU16(&out, static_cast<uint16_t>(record.label.size()));
    out += record.label;
  }
  return out;
}

std::string EncodeWalFrame(std::string_view payload) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU32(&out, Crc32(payload));
  out += payload;
  return out;
}

Result<WalRecord> DecodeWalRecord(std::string_view payload) {
  Reader reader(payload);
  uint8_t type;
  WalRecord record;
  if (!reader.TakeU8(&type) || !reader.TakeU64(&record.txn)) {
    return Status::InvalidArgument("WAL record too short");
  }
  switch (type) {
    case static_cast<uint8_t>(WalRecord::Type::kReserve):
    case static_cast<uint8_t>(WalRecord::Type::kCommit):
      record.type = static_cast<WalRecord::Type>(type);
      if (!reader.TakeF64(&record.epsilon) ||
          !reader.TakeString(&record.dataset) ||
          !reader.TakeString(&record.label)) {
        return Status::InvalidArgument("truncated WAL reserve/commit record");
      }
      break;
    case static_cast<uint8_t>(WalRecord::Type::kAbort):
      record.type = WalRecord::Type::kAbort;
      break;
    default:
      // A checksummed frame with an unknown type is a record from a
      // newer writer, not corruption — refusing beats dropping spend.
      return Status::FailedPrecondition(
          "unknown WAL record type " + std::to_string(type) +
          " (written by a newer version?)");
  }
  if (!reader.empty()) {
    return Status::InvalidArgument("trailing bytes in WAL record");
  }
  return record;
}

Result<std::unique_ptr<BudgetWal>> BudgetWal::Open(const std::string& path,
                                                   FsyncMode mode) {
  std::string bytes;
  if (FileExists(path)) {
    PRIVBASIS_ASSIGN_OR_RETURN(bytes, ReadFileToString(path));
  }

  WalReplay replay;
  uint64_t valid_end = kWalHeaderSize;
  bool needs_header = false;
  if (bytes.empty()) {
    needs_header = true;
  } else if (bytes.size() < kWalHeaderSize) {
    // A crash during the very first write can tear the header itself;
    // anything else at this size is not ours.
    if (std::string_view(kWalHeader).substr(0, bytes.size()) != bytes) {
      return Status::IoError("not a PrivBasis WAL: " + path);
    }
    replay.truncated_tail = true;
    needs_header = true;
  } else {
    const std::string_view header(bytes.data(), kWalHeaderSize);
    if (header.substr(0, 5) != kWalMagic) {
      return Status::IoError("not a PrivBasis WAL: " + path);
    }
    if (header != kWalHeader) {
      return Status::FailedPrecondition(
          "WAL format version mismatch in " + path + " (have " +
          std::string(header.substr(5)) + ", want " +
          std::string(kWalHeader).substr(5) + ")");
    }
  }

  // Replay: walk frames until the bytes stop parsing. Length overrun,
  // short payload and CRC mismatch are all the same event — a crash tore
  // the tail — and everything from that offset on is dropped. Only a
  // *checksummed* frame that fails to decode refuses recovery (see
  // DecodeWalRecord).
  std::unordered_map<uint64_t, OpenReservation> open;
  uint64_t max_txn = 0;
  size_t off = needs_header ? bytes.size() : kWalHeaderSize;
  while (off + kFrameHeaderSize <= bytes.size()) {
    const uint32_t len = ReadU32(bytes.data() + off);
    const uint32_t crc = ReadU32(bytes.data() + off + 4);
    if (len == 0 || len > kMaxPayload ||
        off + kFrameHeaderSize + len > bytes.size()) {
      break;
    }
    const std::string_view payload(bytes.data() + off + kFrameHeaderSize, len);
    if (Crc32(payload) != crc) break;
    PRIVBASIS_ASSIGN_OR_RETURN(WalRecord record, DecodeWalRecord(payload));
    max_txn = std::max(max_txn, record.txn);
    ++replay.frames;
    switch (record.type) {
      case WalRecord::Type::kReserve:
        open[record.txn] = OpenReservation{std::move(record.dataset),
                                           record.epsilon,
                                           std::move(record.label)};
        break;
      case WalRecord::Type::kCommit: {
        // Normally resolves an open reservation; a commit whose reserve
        // record is missing still charges its actual (never refund).
        open.erase(record.txn);
        auto& ledger = replay.ledgers[record.dataset];
        ledger.spent += record.epsilon;
        ledger.entries.push_back(
            Accountant::Entry{std::move(record.label), record.epsilon});
        break;
      }
      case WalRecord::Type::kAbort: {
        const auto it = open.find(record.txn);
        if (it != open.end()) {
          auto& ledger = replay.ledgers[it->second.dataset];
          ledger.spent += it->second.epsilon;
          ledger.entries.push_back(Accountant::Entry{
              it->second.label + " (aborted)", it->second.epsilon});
          open.erase(it);
        }
        break;
      }
    }
    off += kFrameHeaderSize + len;
  }
  if (off < bytes.size()) {
    replay.truncated_tail = true;
  }
  valid_end = needs_header ? kWalHeaderSize : off;

  // Reservations with no commit/abort were in flight at the crash:
  // noise may have been observed, so charge them in full.
  for (auto& [txn, reservation] : open) {
    (void)txn;
    auto& ledger = replay.ledgers[reservation.dataset];
    ledger.spent += reservation.epsilon;
    ledger.entries.push_back(Accountant::Entry{
        reservation.label + " (in-flight at crash)", reservation.epsilon});
    ++replay.in_flight;
  }
  replay.next_txn = max_txn + 1;

  // Make the on-disk tail match what we replayed before accepting new
  // appends — otherwise fresh frames would land after torn garbage and
  // be unreachable on the next recovery.
  if (replay.truncated_tail) {
    const off_t keep = needs_header ? 0 : static_cast<off_t>(valid_end);
    if (::truncate(path.c_str(), keep) != 0) {
      return ErrnoToStatus(errno, "truncate torn tail of " + path);
    }
  }

  PRIVBASIS_ASSIGN_OR_RETURN(AppendFile file, AppendFile::Open(path, "wal"));
  if (needs_header) {
    PRIVBASIS_RETURN_NOT_OK(file.Append(kWalHeader));
    if (mode != FsyncMode::kNever) PRIVBASIS_RETURN_NOT_OK(file.Sync());
  }

  return std::unique_ptr<BudgetWal>(
      new BudgetWal(std::move(file), mode, std::move(replay), valid_end));
}

Status BudgetWal::AppendFrame(const std::string& frame, bool is_sync_point) {
  if (poisoned_) {
    return Status::IoError(
        "WAL disabled: a failed append could not be rolled back");
  }
  Status status = file_.Append(frame);
  if (!status.ok()) {
    // Self-heal: drop whatever prefix of the frame reached the file so
    // the next append starts at a clean frame boundary.
    if (!file_.TruncateTo(good_size_).ok()) poisoned_ = true;
    return status;
  }
  good_size_ += frame.size();
  if (mode_ == FsyncMode::kAlways ||
      (mode_ == FsyncMode::kCommit && is_sync_point)) {
    PRIVBASIS_RETURN_NOT_OK(file_.Sync());
  }
  return Status::OK();
}

Result<uint64_t> BudgetWal::AppendReserve(const std::string& dataset,
                                          double epsilon,
                                          const std::string& label) {
  WalRecord record;
  record.type = WalRecord::Type::kReserve;
  record.epsilon = epsilon;
  record.dataset = dataset;
  record.label = label;
  MutexLock lock(mu_);
  record.txn = next_txn_++;
  PRIVBASIS_RETURN_NOT_OK(
      AppendFrame(EncodeWalFrame(EncodeWalRecord(record)),
                  /*is_sync_point=*/false));
  return record.txn;
}

Status BudgetWal::AppendCommit(uint64_t txn, const std::string& dataset,
                               double actual, const std::string& label) {
  WalRecord record;
  record.type = WalRecord::Type::kCommit;
  record.txn = txn;
  record.epsilon = actual;
  record.dataset = dataset;
  record.label = label;
  MutexLock lock(mu_);
  return AppendFrame(EncodeWalFrame(EncodeWalRecord(record)),
                     /*is_sync_point=*/true);
}

Status BudgetWal::AppendAbort(uint64_t txn) {
  WalRecord record;
  record.type = WalRecord::Type::kAbort;
  record.txn = txn;
  MutexLock lock(mu_);
  return AppendFrame(EncodeWalFrame(EncodeWalRecord(record)),
                     /*is_sync_point=*/true);
}

}  // namespace privbasis::store
