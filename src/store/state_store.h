// StateStore: the durable side of a query server — one directory that
// survives kill -9.
//
// Layout of --state-dir:
//
//   budget.wal       append-only ε ledger (store/wal.h) shared by every
//                    dataset; replayed at open
//   datasets.json    manifest: {"version": 1, "next_id": N,
//                    "datasets": [{"id", "snapshot", "budget"}, ...]},
//                    rewritten atomically on every registration/eviction
//   snapshots/       one <id>.snap per registered dataset
//                    (store/snapshot.h)
//
// Invariant the write ordering maintains: by the time a dataset is
// visible to queries, its snapshot and manifest entry are durable and
// its Accountant is journal-attached — so there is no window in which ε
// can be spent on data the next boot won't remember. That is why
// PersistRegistration runs as the DatasetRegistry's pre-insert hook, and
// why eviction persists the manifest BEFORE the registry forgets the id
// (a failed manifest write leaves the dataset registered and returns
// 500, rather than resurrecting it on restart with its ledger intact but
// its eviction forgotten... the other way around).
//
// Recovery is conservative in the same direction as the WAL: spend
// replayed for an id no longer in the manifest is simply ignored, but a
// re-registered NAME (operator preloads) re-binds to whatever the WAL
// remembers under that name — a name reuse can over-charge, never
// under-charge.
#ifndef PRIVBASIS_STORE_STATE_STORE_H_
#define PRIVBASIS_STORE_STATE_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/status.h"
#include "engine/dataset.h"
#include "store/wal.h"

namespace privbasis::store {

class StateStore {
 public:
  /// Creates/opens the directory layout and replays the budget WAL.
  /// Fails (leaving nothing half-open) on an unreadable manifest, a
  /// foreign/newer WAL, or IO errors.
  static Result<std::unique_ptr<StateStore>> Open(const std::string& dir,
                                                  FsyncMode mode);

  StateStore(const StateStore&) = delete;
  StateStore& operator=(const StateStore&) = delete;

  /// One dataset brought back from disk: snapshot decoded, WAL-recovered
  /// spend Restore()d, journal attached. Ready to register.
  struct Recovered {
    std::string id;
    std::shared_ptr<Dataset> dataset;
  };

  /// Loads every manifest entry. A missing/corrupt snapshot fails the
  /// whole recovery (serving a subset would silently "forget" data the
  /// operator believes is registered — the server stays 503 instead).
  Result<std::vector<Recovered>> RecoverDatasets();

  /// The id counter persisted in the manifest (seed the registry with it
  /// so "ds-N" ids are never reused across restarts).
  uint64_t next_id() const;

  /// Durably records a registration BEFORE it becomes visible: snapshot
  /// file, manifest rewrite, then journal attachment (re-binding any
  /// spend the WAL already holds under this id). On failure nothing is
  /// registered and any partial snapshot is removed.
  Status PersistRegistration(const std::string& id,
                             const std::shared_ptr<Dataset>& dataset);

  /// Durably forgets `id` (manifest rewrite, then best-effort snapshot
  /// unlink). Idempotent; a failed manifest write keeps the dataset.
  Status PersistEviction(const std::string& id);

  const std::string& dir() const { return dir_; }
  const WalReplay& wal_replay() const { return wal_->recovered(); }

 private:
  struct ManifestEntry {
    std::string id;
    std::string snapshot;  // filename under snapshots/
    double total_epsilon;  // Accountant::kUnlimited = no cap
  };

  StateStore(std::string dir, FsyncMode mode, std::shared_ptr<BudgetWal> wal)
      : dir_(std::move(dir)), mode_(mode), wal_(std::move(wal)) {}

  std::string SnapshotPath(const ManifestEntry& entry) const;
  /// Serializes + atomically rewrites datasets.json.
  Status WriteManifestLocked() PB_REQUIRES(mu_);

  const std::string dir_;
  const FsyncMode mode_;
  std::shared_ptr<BudgetWal> wal_;

  mutable Mutex mu_;
  std::vector<ManifestEntry> entries_ PB_GUARDED_BY(mu_);
  uint64_t next_id_ PB_GUARDED_BY(mu_) = 1;
};

}  // namespace privbasis::store

#endif  // PRIVBASIS_STORE_STATE_STORE_H_
