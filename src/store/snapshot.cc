#include "store/snapshot.h"

#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "common/crc32.h"
#include "store/io.h"

namespace privbasis::store {

namespace {

constexpr char kSnapMagicPrefix[] = "PBSNAP";
constexpr char kSnapHeader[] = "PBSNAP01";
constexpr size_t kSnapHeaderSize = 8;
constexpr size_t kCrcSize = 4;

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  bool TakeU32(uint32_t* v) {
    if (bytes_.size() < 4) return false;
    uint32_t out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[i])) << (8 * i);
    }
    *v = out;
    bytes_.remove_prefix(4);
    return true;
  }
  bool TakeU64(uint64_t* v) {
    if (bytes_.size() < 8) return false;
    uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[i])) << (8 * i);
    }
    *v = out;
    bytes_.remove_prefix(8);
    return true;
  }
  size_t remaining() const { return bytes_.size(); }

 private:
  std::string_view bytes_;
};

}  // namespace

std::string EncodeSnapshot(const TransactionDatabase& db) {
  const size_t n = db.NumTransactions();
  std::string out(kSnapHeader, kSnapHeaderSize);
  out.reserve(kSnapHeaderSize + 20 + 4 * (n + db.TotalItemOccurrences()) +
              kCrcSize);
  PutU32(&out, db.UniverseSize());
  PutU64(&out, static_cast<uint64_t>(n));
  PutU64(&out, db.TotalItemOccurrences());
  for (size_t i = 0; i < n; ++i) {
    PutU32(&out, static_cast<uint32_t>(db.Transaction(i).size()));
  }
  for (size_t i = 0; i < n; ++i) {
    for (const Item item : db.Transaction(i)) PutU32(&out, item);
  }
  // The CRC covers the body (everything after the magic), so a version
  // bump changes the header check, not the checksum definition.
  PutU32(&out, Crc32(std::string_view(out).substr(kSnapHeaderSize)));
  return out;
}

Result<TransactionDatabase> DecodeSnapshot(std::string_view bytes) {
  if (bytes.size() < kSnapHeaderSize + kCrcSize) {
    return Status::InvalidArgument("snapshot truncated");
  }
  const std::string_view header = bytes.substr(0, kSnapHeaderSize);
  if (header.substr(0, 6) != kSnapMagicPrefix) {
    return Status::IoError("not a PrivBasis snapshot");
  }
  if (header != kSnapHeader) {
    return Status::FailedPrecondition(
        "snapshot format version mismatch (have " +
        std::string(header.substr(6)) + ", want " +
        std::string(kSnapHeader).substr(6) + ")");
  }

  const std::string_view body =
      bytes.substr(kSnapHeaderSize, bytes.size() - kSnapHeaderSize - kCrcSize);
  Reader crc_reader(bytes.substr(bytes.size() - kCrcSize));
  uint32_t stored_crc = 0;
  (void)crc_reader.TakeU32(&stored_crc);
  if (Crc32(body) != stored_crc) {
    return Status::InvalidArgument("snapshot CRC mismatch");
  }

  Reader reader(body);
  uint32_t universe = 0;
  uint64_t num_transactions = 0;
  uint64_t total_items = 0;
  if (!reader.TakeU32(&universe) || !reader.TakeU64(&num_transactions) ||
      !reader.TakeU64(&total_items)) {
    return Status::InvalidArgument("snapshot header truncated");
  }
  // The CRC already vouches for integrity; these checks catch encoder
  // bugs, not disk corruption.
  if (reader.remaining() != 4 * (num_transactions + total_items)) {
    return Status::InvalidArgument("snapshot size inconsistent with counts");
  }

  std::vector<uint32_t> lengths(num_transactions);
  uint64_t length_sum = 0;
  for (uint64_t i = 0; i < num_transactions; ++i) {
    (void)reader.TakeU32(&lengths[i]);
    length_sum += lengths[i];
  }
  if (length_sum != total_items) {
    return Status::InvalidArgument("snapshot transaction lengths disagree");
  }

  TransactionDatabase::Builder builder(universe);
  std::vector<Item> transaction;
  for (uint64_t i = 0; i < num_transactions; ++i) {
    transaction.resize(lengths[i]);
    for (uint32_t j = 0; j < lengths[i]; ++j) {
      (void)reader.TakeU32(&transaction[j]);
    }
    builder.AddTransaction(transaction);
  }
  return std::move(builder).Build();
}

Status WriteSnapshotFile(const std::string& path,
                         const TransactionDatabase& db, bool fsync) {
  return AtomicWriteFile(path, EncodeSnapshot(db), fsync, "snapshot");
}

Result<TransactionDatabase> ReadSnapshotFile(const std::string& path) {
  PRIVBASIS_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  auto db = DecodeSnapshot(bytes);
  if (!db.ok()) {
    return Status(db.status().code(),
                  db.status().message() + " (" + path + ")");
  }
  return db;
}

}  // namespace privbasis::store
