// Durable-file primitives for src/store: POSIX IO with every
// failure-relevant syscall routed through a common/failpoint site, so
// the fault-injection tests exercise exactly the code the server runs.
//
// Error mapping is part of the service contract: ENOSPC/EDQUOT become
// kResourceExhausted (HTTP 429 — retryable once space frees up), every
// other IO failure becomes kIoError (HTTP 500). Either way the caller
// fails *closed*: a budget write that cannot be made durable fails the
// query, never the guarantee.
#ifndef PRIVBASIS_STORE_IO_H_
#define PRIVBASIS_STORE_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace privbasis::store {

/// errno → Status: ENOSPC/EDQUOT → kResourceExhausted, else kIoError.
/// `context` names the failing operation in the message.
Status ErrnoToStatus(int err, const std::string& context);

/// mkdir -p (two levels deep at most in the state-dir layout).
Status EnsureDir(const std::string& path);

bool FileExists(const std::string& path);

/// Whole-file read (snapshots and the WAL replay are bounded by what the
/// server itself wrote; no streaming needed).
Result<std::string> ReadFileToString(const std::string& path);

/// Removes a file; missing files are OK (idempotent eviction).
Status RemoveFile(const std::string& path);

/// Atomic whole-file replace: write `bytes` to `path + ".tmp"`, fsync if
/// requested, rename over `path`, fsync the parent directory. Readers
/// see either the old or the new content, never a prefix — torn
/// manifests cannot exist. Failpoint sites: `<site_prefix>_write`,
/// `<site_prefix>_rename`.
Status AtomicWriteFile(const std::string& path, std::string_view bytes,
                       bool fsync, const char* site_prefix);

/// Append-only file handle (the WAL). Failpoint sites are
/// `<site_prefix>_append` and `<site_prefix>_sync`; a torn-write action
/// at the append site writes its prefix then reports EIO — exactly the
/// partial frame a crash mid-write leaves behind.
class AppendFile {
 public:
  /// Opens (creating if needed) for appends.
  static Result<AppendFile> Open(const std::string& path,
                                 const char* site_prefix);

  AppendFile(AppendFile&& other) noexcept;
  AppendFile& operator=(AppendFile&& other) noexcept;
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;
  ~AppendFile();

  Status Append(std::string_view bytes);
  Status Sync();
  /// ftruncate to `size` — the WAL's self-heal after a failed append
  /// (drops whatever prefix of the frame reached the file).
  Status TruncateTo(uint64_t size);
  void Close();

 private:
  AppendFile(int fd, std::string path, const char* site_prefix)
      : fd_(fd), path_(std::move(path)), site_prefix_(site_prefix) {}

  int fd_ = -1;
  std::string path_;
  const char* site_prefix_ = "";
};

}  // namespace privbasis::store

#endif  // PRIVBASIS_STORE_IO_H_
