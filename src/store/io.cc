#include "store/io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/failpoint.h"

namespace privbasis::store {

namespace {

std::string SiteName(const char* prefix, const char* op) {
  return std::string(prefix) + "_" + op;
}

/// Applies a failpoint action to a pending write of `bytes` on `fd`.
/// Returns true when the action fully handled the write (and set
/// `*status`); false means proceed with the real write.
bool ApplyWriteFailpoint(const failpoint::Action& action, int fd,
                         std::string_view bytes, const std::string& context,
                         Status* status) {
  switch (action.kind) {
    case failpoint::Action::Kind::kError:
      *status = ErrnoToStatus(action.err, context);
      return true;
    case failpoint::Action::Kind::kTorn: {
      // The crash signature: a prefix lands on disk, then the write
      // "fails". Recovery must treat the prefix as garbage.
      const size_t n = std::min(action.arg, bytes.size());
      if (n > 0) {
        [[maybe_unused]] ssize_t written = ::write(fd, bytes.data(), n);
      }
      *status = ErrnoToStatus(EIO, context + " (torn write)");
      return true;
    }
    default:
      return false;
  }
}

Status WriteAllFd(int fd, std::string_view bytes, const std::string& context) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoToStatus(errno, context);
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return ErrnoToStatus(errno, "open dir " + dir);
  const int rc = ::fsync(fd);
  const int err = errno;
  ::close(fd);
  if (rc != 0) return ErrnoToStatus(err, "fsync dir " + dir);
  return Status::OK();
}

}  // namespace

Status ErrnoToStatus(int err, const std::string& context) {
  const std::string message = context + ": " + std::strerror(err);
  if (err == ENOSPC || err == EDQUOT) {
    return Status::ResourceExhausted(message);
  }
  return Status::IoError(message);
}

Status EnsureDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::OK();
  }
  if (errno != ENOENT) return ErrnoToStatus(errno, "mkdir " + path);
  // One missing parent level (state-dir layouts are shallow).
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos || slash == 0) {
    return ErrnoToStatus(ENOENT, "mkdir " + path);
  }
  PRIVBASIS_RETURN_NOT_OK(EnsureDir(path.substr(0, slash)));
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    return ErrnoToStatus(errno, "mkdir " + path);
  }
  return Status::OK();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Result<std::string> ReadFileToString(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return ErrnoToStatus(errno, "open " + path);
  }
  std::string out;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      return ErrnoToStatus(err, "read " + path);
    }
    if (n == 0) break;
    out.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return ErrnoToStatus(errno, "unlink " + path);
  }
  return Status::OK();
}

Status AtomicWriteFile(const std::string& path, std::string_view bytes,
                       bool fsync, const char* site_prefix) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoToStatus(errno, "open " + tmp);

  Status status = Status::OK();
  const auto action = failpoint::Hit(SiteName(site_prefix, "write").c_str());
  if (!ApplyWriteFailpoint(action, fd, bytes, "write " + tmp, &status)) {
    status = WriteAllFd(fd, bytes, "write " + tmp);
  }
  if (status.ok() && fsync && ::fsync(fd) != 0) {
    status = ErrnoToStatus(errno, "fsync " + tmp);
  }
  ::close(fd);
  if (!status.ok()) {
    ::unlink(tmp.c_str());  // never leave a partial temp behind
    return status;
  }

  const auto rename_action =
      failpoint::Hit(SiteName(site_prefix, "rename").c_str());
  if (rename_action.kind == failpoint::Action::Kind::kError) {
    ::unlink(tmp.c_str());
    return ErrnoToStatus(rename_action.err, "rename " + tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    return ErrnoToStatus(err, "rename " + tmp + " -> " + path);
  }
  if (fsync) {
    const size_t slash = path.find_last_of('/');
    const std::string dir = slash == std::string::npos
                                ? std::string(".")
                                : path.substr(0, slash);
    PRIVBASIS_RETURN_NOT_OK(SyncDir(dir));
  }
  return Status::OK();
}

Result<AppendFile> AppendFile::Open(const std::string& path,
                                    const char* site_prefix) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return ErrnoToStatus(errno, "open " + path);
  return AppendFile(fd, path, site_prefix);
}

AppendFile::AppendFile(AppendFile&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      path_(std::move(other.path_)),
      site_prefix_(other.site_prefix_) {}

AppendFile& AppendFile::operator=(AppendFile&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    site_prefix_ = other.site_prefix_;
  }
  return *this;
}

AppendFile::~AppendFile() { Close(); }

void AppendFile::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status AppendFile::Append(std::string_view bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("append on closed file");
  Status status = Status::OK();
  const auto action = failpoint::Hit(SiteName(site_prefix_, "append").c_str());
  if (ApplyWriteFailpoint(action, fd_, bytes, "append " + path_, &status)) {
    return status;
  }
  return WriteAllFd(fd_, bytes, "append " + path_);
}

Status AppendFile::TruncateTo(uint64_t size) {
  if (fd_ < 0) return Status::FailedPrecondition("truncate on closed file");
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return ErrnoToStatus(errno, "ftruncate " + path_);
  }
  return Status::OK();
}

Status AppendFile::Sync() {
  if (fd_ < 0) return Status::FailedPrecondition("fsync on closed file");
  const auto action = failpoint::Hit(SiteName(site_prefix_, "sync").c_str());
  if (action.kind == failpoint::Action::Kind::kError) {
    return ErrnoToStatus(action.err, "fsync " + path_);
  }
  if (::fsync(fd_) != 0) return ErrnoToStatus(errno, "fsync " + path_);
  return Status::OK();
}

}  // namespace privbasis::store
