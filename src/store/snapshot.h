// Versioned binary snapshots of a TransactionDatabase — the durable half
// of a registered dataset (the other half, its spent ε, lives in the
// budget WAL).
//
// Layout (all integers little-endian):
//
//   8 bytes  magic+version        "PBSNAP01"
//   u32      universe size |I|
//   u64      number of transactions N
//   u64      total item occurrences Σ|t|
//   N × u32  per-transaction lengths
//   Σ|t|×u32 item ids, transaction by transaction (sorted within each)
//   u32      CRC32 of everything after the 8-byte magic
//
// Only the raw transactions are serialized: item supports, the vertical
// index and the mined margins are all memoized rebuilds inside Dataset,
// so persisting them would just be a second copy of derivable state that
// could drift. Snapshot files are written with AtomicWriteFile (tmp +
// fsync + rename), so a reader sees a complete file or none.
#ifndef PRIVBASIS_STORE_SNAPSHOT_H_
#define PRIVBASIS_STORE_SNAPSHOT_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "data/transaction_db.h"

namespace privbasis::store {

/// Serializes `db` into the snapshot byte format above.
std::string EncodeSnapshot(const TransactionDatabase& db);

/// Parses snapshot bytes. kFailedPrecondition on a version mismatch,
/// kIoError on a foreign file, kInvalidArgument on truncation or a CRC
/// mismatch.
Result<TransactionDatabase> DecodeSnapshot(std::string_view bytes);

/// Atomic write (failpoint sites `snapshot_write` / `snapshot_rename`).
Status WriteSnapshotFile(const std::string& path,
                         const TransactionDatabase& db, bool fsync);

Result<TransactionDatabase> ReadSnapshotFile(const std::string& path);

}  // namespace privbasis::store

#endif  // PRIVBASIS_STORE_SNAPSHOT_H_
