#include "store/state_store.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "common/json.h"
#include "store/io.h"
#include "store/snapshot.h"

namespace privbasis::store {

namespace {

constexpr uint64_t kManifestVersion = 1;

/// Parses one manifest dataset entry; strict about what it needs,
/// tolerant of nothing (the manifest is our own output).
struct ParsedEntry {
  std::string id;
  std::string snapshot;
  double total_epsilon;
};

Result<ParsedEntry> ParseManifestEntry(const json::Value& value) {
  ParsedEntry out;
  PRIVBASIS_ASSIGN_OR_RETURN(const json::Value::Object* obj,
                             value.GetObject());
  (void)obj;
  const json::Value* id = value.Find("id");
  const json::Value* snapshot = value.Find("snapshot");
  const json::Value* budget = value.Find("budget");
  if (id == nullptr || snapshot == nullptr || budget == nullptr) {
    return Status::IoError("manifest entry missing id/snapshot/budget");
  }
  PRIVBASIS_ASSIGN_OR_RETURN(out.id, id->GetString());
  PRIVBASIS_ASSIGN_OR_RETURN(out.snapshot, snapshot->GetString());
  if (budget->is_null()) {
    out.total_epsilon = Accountant::kUnlimited;
  } else {
    PRIVBASIS_ASSIGN_OR_RETURN(out.total_epsilon, budget->GetDouble());
    if (!(out.total_epsilon > 0.0)) {
      return Status::IoError("manifest entry has non-positive budget");
    }
  }
  if (out.id.empty() || out.snapshot.find('/') != std::string::npos) {
    return Status::IoError("manifest entry has a malformed id/snapshot");
  }
  return out;
}

}  // namespace

Result<std::unique_ptr<StateStore>> StateStore::Open(const std::string& dir,
                                                     FsyncMode mode) {
  PRIVBASIS_RETURN_NOT_OK(EnsureDir(dir));
  PRIVBASIS_RETURN_NOT_OK(EnsureDir(dir + "/snapshots"));
  PRIVBASIS_ASSIGN_OR_RETURN(std::shared_ptr<BudgetWal> wal,
                             BudgetWal::Open(dir + "/budget.wal", mode));
  auto store = std::unique_ptr<StateStore>(
      new StateStore(dir, mode, std::move(wal)));

  const std::string manifest_path = dir + "/datasets.json";
  if (!FileExists(manifest_path)) return store;  // fresh state dir

  PRIVBASIS_ASSIGN_OR_RETURN(std::string text,
                             ReadFileToString(manifest_path));
  auto parsed = json::Parse(text);
  if (!parsed.ok()) {
    // AtomicWriteFile makes a torn manifest impossible; a parse failure
    // means outside interference, and guessing would drop datasets.
    return Status::IoError("corrupt manifest " + manifest_path + ": " +
                           parsed.status().message());
  }
  const json::Value* version = parsed->Find("version");
  if (version == nullptr) return Status::IoError("manifest missing version");
  PRIVBASIS_ASSIGN_OR_RETURN(const uint64_t version_value,
                             version->GetUint());
  if (version_value != kManifestVersion) {
    return Status::FailedPrecondition(
        "manifest version mismatch in " + manifest_path + " (have " +
        std::to_string(version_value) + ", want " +
        std::to_string(kManifestVersion) + ")");
  }
  const json::Value* next_id = parsed->Find("next_id");
  if (next_id == nullptr) {
    return Status::IoError("manifest missing next_id");
  }
  PRIVBASIS_ASSIGN_OR_RETURN(const uint64_t parsed_next_id,
                             next_id->GetUint());
  const json::Value* datasets = parsed->Find("datasets");
  if (datasets == nullptr) {
    return Status::IoError("manifest missing datasets");
  }
  PRIVBASIS_ASSIGN_OR_RETURN(const json::Value::Array* rows,
                             datasets->GetArray());
  std::vector<ManifestEntry> parsed_entries;
  for (const json::Value& row : *rows) {
    PRIVBASIS_ASSIGN_OR_RETURN(ParsedEntry entry, ParseManifestEntry(row));
    parsed_entries.push_back(
        ManifestEntry{entry.id, entry.snapshot, entry.total_epsilon});
  }
  {
    MutexLock lock(store->mu_);
    store->next_id_ = parsed_next_id;
    store->entries_ = std::move(parsed_entries);
  }
  return store;
}

Result<std::vector<StateStore::Recovered>> StateStore::RecoverDatasets() {
  MutexLock lock(mu_);
  std::vector<Recovered> out;
  out.reserve(entries_.size());
  const auto& replayed = wal_->recovered().ledgers;
  for (const ManifestEntry& entry : entries_) {
    auto db = ReadSnapshotFile(SnapshotPath(entry));
    if (!db.ok()) {
      return Status(db.status().code(), "recovering dataset \"" + entry.id +
                                            "\": " + db.status().message());
    }
    Dataset::Options options;
    options.total_epsilon = entry.total_epsilon;
    std::shared_ptr<Dataset> dataset =
        Dataset::Create(std::move(*db), options);
    const auto ledger = replayed.find(entry.id);
    if (ledger != replayed.end()) {
      PRIVBASIS_RETURN_NOT_OK(dataset->accountant()->Restore(
          ledger->second.spent, ledger->second.entries));
    }
    dataset->accountant()->AttachJournal(
        std::make_shared<WalAccountantJournal>(wal_, entry.id));
    out.push_back(Recovered{entry.id, std::move(dataset)});
  }
  return out;
}

uint64_t StateStore::next_id() const {
  MutexLock lock(mu_);
  return next_id_;
}

Status StateStore::PersistRegistration(
    const std::string& id, const std::shared_ptr<Dataset>& dataset) {
  MutexLock lock(mu_);
  for (const ManifestEntry& entry : entries_) {
    if (entry.id == id) {
      return Status::FailedPrecondition("dataset \"" + id +
                                        "\" is already persisted");
    }
  }
  ManifestEntry entry;
  entry.id = id;
  entry.snapshot = id + ".snap";
  entry.total_epsilon = dataset->accountant()->total_epsilon();

  // "ds-N" ids come from the registry counter; remembering N keeps ids
  // unique across restarts (a reused id would inherit the WAL ledger of
  // its predecessor).
  if (id.starts_with("ds-")) {
    const uint64_t n = std::strtoull(id.c_str() + 3, nullptr, 10);
    next_id_ = std::max(next_id_, n + 1);
  }

  PRIVBASIS_RETURN_NOT_OK(WriteSnapshotFile(SnapshotPath(entry),
                                            dataset->db(),
                                            mode_ != FsyncMode::kNever));
  entries_.push_back(entry);
  if (Status manifest = WriteManifestLocked(); !manifest.ok()) {
    entries_.pop_back();
    (void)RemoveFile(SnapshotPath(entry));
    return manifest;
  }

  // The durable records exist; now bind the ledger. A name the WAL
  // already knows (a re-preloaded named dataset whose manifest entry was
  // lost or evicted) resumes its recorded spend — over-charge, never
  // under-charge.
  const auto& replayed = wal_->recovered().ledgers;
  const auto ledger = replayed.find(id);
  if (ledger != replayed.end()) {
    PRIVBASIS_RETURN_NOT_OK(dataset->accountant()->Restore(
        ledger->second.spent, ledger->second.entries));
  }
  dataset->accountant()->AttachJournal(
      std::make_shared<WalAccountantJournal>(wal_, id));
  return Status::OK();
}

Status StateStore::PersistEviction(const std::string& id) {
  MutexLock lock(mu_);
  const auto it =
      std::find_if(entries_.begin(), entries_.end(),
                   [&](const ManifestEntry& e) { return e.id == id; });
  if (it == entries_.end()) return Status::OK();  // idempotent
  const ManifestEntry entry = *it;
  entries_.erase(it);
  if (Status manifest = WriteManifestLocked(); !manifest.ok()) {
    entries_.push_back(entry);
    return manifest;
  }
  // The manifest no longer references the snapshot, so a failed unlink
  // only leaks a file, never resurrects a dataset.
  (void)RemoveFile(SnapshotPath(entry));
  return Status::OK();
}

std::string StateStore::SnapshotPath(const ManifestEntry& entry) const {
  return dir_ + "/snapshots/" + entry.snapshot;
}

Status StateStore::WriteManifestLocked() {
  json::Value manifest;
  manifest.Set("version", kManifestVersion);
  manifest.Set("next_id", next_id_);
  json::Value::Array datasets;
  for (const ManifestEntry& entry : entries_) {
    json::Value row;
    row.Set("id", entry.id);
    row.Set("snapshot", entry.snapshot);
    row.Set("budget", std::isfinite(entry.total_epsilon)
                          ? json::Value(entry.total_epsilon)
                          : json::Value(nullptr));
    datasets.emplace_back(std::move(row));
  }
  manifest.Set("datasets", std::move(datasets));
  return AtomicWriteFile(dir_ + "/datasets.json", manifest.Dump(),
                         mode_ != FsyncMode::kNever, "manifest");
}

}  // namespace privbasis::store
