#include "baseline/tf.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/distributions.h"
#include "common/logspace.h"
#include "common/math_util.h"
#include "dp/laplace_mechanism.h"
#include "dp/order_statistics.h"
#include "fim/fpgrowth.h"
#include "fim/topk.h"

namespace privbasis {

namespace {

/// Explicit candidates grouped by exact support; groups are mutable per
/// run (members are removed as they are selected).
struct SupportGroup {
  uint64_t support;
  std::vector<uint32_t> members;  // indices into TfRunner::explicit_
};

std::vector<SupportGroup> GroupBySupport(
    const std::vector<FrequentItemset>& explicit_set) {
  std::vector<uint32_t> order(explicit_set.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return explicit_set[a].support > explicit_set[b].support;
  });
  std::vector<SupportGroup> groups;
  for (uint32_t idx : order) {
    if (groups.empty() || groups.back().support != explicit_set[idx].support) {
      groups.push_back(SupportGroup{explicit_set[idx].support, {}});
    }
    groups.back().members.push_back(idx);
  }
  return groups;
}

constexpr size_t kImplicitKey = std::numeric_limits<size_t>::max();

}  // namespace

TfRunner::TfRunner(const TransactionDatabase* db, size_t k, TfOptions options)
    : db_(db), k_(k), options_(options), index_(*db) {}

Result<TfRunner> TfRunner::Create(const TransactionDatabase& db, size_t k,
                                  TfOptions options,
                                  const CancelToken* cancel) {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  if (options.m == 0) return Status::InvalidArgument("m must be >= 1");
  TfRunner runner(&db, k, options);
  runner.n_ = db.NumTransactions();
  runner.log_u_ = TfLogCandidateSpace(db.UniverseSize(), options.m);
  runner.u_size_ = std::exp(runner.log_u_);
  for (size_t j = 1; j <= options.m; ++j) {
    runner.size_log_weights_.push_back(LogChoose(db.UniverseSize(), j));
  }

  // Exact fk over itemsets of length <= m.
  PRIVBASIS_ASSIGN_OR_RETURN(
      TopKResult top,
      MineTopK(db, k, options.m, /*num_threads=*/0, cancel));
  if (top.itemsets.size() < k) {
    return Status::InvalidArgument(
        "dataset has fewer than k itemsets of length <= m");
  }
  runner.fk_count_ = top.kth_support;

  // Explicit candidate set: supports >= floor, with the floor descending
  // geometrically from fk until the set would exceed the cap. m == 1
  // needs no miner — the singletons are precomputed.
  if (options.m == 1) {
    uint64_t floor = std::max<uint64_t>(1, runner.fk_count_);
    std::vector<FrequentItemset> best;
    while (true) {
      std::vector<FrequentItemset> current;
      for (Item it = 0; it < db.UniverseSize(); ++it) {
        uint64_t sup = db.ItemSupports()[it];
        if (sup >= floor) current.push_back(FrequentItemset{Itemset{it}, sup});
      }
      if (current.size() > options.explicit_limit && !best.empty()) break;
      if (current.size() <= options.explicit_limit) {
        best = std::move(current);
        runner.floor_support_ = floor;
        if (floor == 1 || best.size() >= options.explicit_limit / 2) break;
        floor = std::max<uint64_t>(1, floor / 2);
      } else {
        // Even the first floor overflowed: raise it.
        floor = floor * 2 + 1;
      }
    }
    runner.explicit_ = std::move(best);
  } else {
    uint64_t floor = std::max<uint64_t>(1, runner.fk_count_);
    std::vector<FrequentItemset> best;
    uint64_t best_floor = floor;
    bool have_best = false;
    while (true) {
      MiningOptions mopts;
      mopts.min_support = floor;
      mopts.max_length = options.m;
      mopts.max_patterns = options.explicit_limit;
      mopts.cancel = cancel;
      auto mined = MineFpGrowth(db, mopts);
      if (!mined.ok()) return mined.status();
      if (mined->aborted) {
        if (have_best) break;  // keep the last floor that fit
        floor = floor * 2 + 1;
        continue;
      }
      best = std::move(mined->itemsets);
      best_floor = floor;
      have_best = true;
      if (floor == 1 || best.size() >= options.explicit_limit / 2) break;
      floor = std::max<uint64_t>(1, floor / 2);
    }
    runner.explicit_ = std::move(best);
    runner.floor_support_ = best_floor;
  }

  runner.explicit_lookup_.reserve(runner.explicit_.size() * 2);
  for (const auto& fi : runner.explicit_) {
    runner.explicit_lookup_.insert(fi.items);
  }
  return runner;
}

TfEffectiveness TfRunner::Effectiveness(double epsilon) const {
  return ComputeTfEffectiveness(db_->UniverseSize(), n_, fk_count_, k_,
                                options_.m, epsilon, options_.rho);
}

void TfRunner::FillDiagnostics(double epsilon, TfResult* result) const {
  double fk = static_cast<double>(fk_count_) / static_cast<double>(n_);
  result->gamma = TfGamma(n_, k_, epsilon, options_.rho, log_u_);
  result->truncated_freq = fk - result->gamma;
  result->degenerate = result->truncated_freq <= 0.0;
  result->explicit_candidates = explicit_.size();
}

Itemset TfRunner::SampleImplicitItemset(
    Rng& rng,
    const std::unordered_set<Itemset, ItemsetHash>& taken) const {
  // Uniform over U: size j with probability proportional to C(|I|, j),
  // then a uniform j-subset; rejection keeps it uniform over U minus the
  // explicit set and the already-selected itemsets.
  double max_lw = *std::max_element(size_log_weights_.begin(),
                                    size_log_weights_.end());
  std::vector<double> weights;
  weights.reserve(size_log_weights_.size());
  for (double lw : size_log_weights_) weights.push_back(std::exp(lw - max_lw));
  while (true) {
    size_t j = SampleDiscrete(rng, weights) + 1;
    if (j > db_->UniverseSize()) continue;
    auto picks = SampleDistinct(rng, db_->UniverseSize(), j);
    std::vector<Item> items(picks.begin(), picks.end());
    Itemset candidate(std::move(items));
    if (explicit_lookup_.contains(candidate) || taken.contains(candidate)) {
      continue;
    }
    return candidate;
  }
}

Result<TfResult> TfRunner::Run(double epsilon, Rng& rng,
                               PrivacyAccountant* accountant,
                               const CancelToken* cancel) const {
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("epsilon must be > 0");
  }
  if (accountant != nullptr) {
    PRIVBASIS_RETURN_NOT_OK(accountant->Consume(epsilon, "TF"));
  }
  if (options_.selection == TfOptions::Selection::kExponentialMechanism) {
    return RunExponential(epsilon, rng, cancel);
  }
  return RunLaplace(epsilon, rng, cancel);
}

Result<TfResult> TfRunner::RunExponential(double epsilon, Rng& rng,
                                          const CancelToken* cancel) const {
  TfResult result;
  FillDiagnostics(epsilon, &result);

  // Per-round exponent on truncated counts: (ε/2 over k rounds, GS 1,
  // non-monotone) -> ε/(4k), matching exp(εN·f̂/(4k)) from the paper.
  const double factor = epsilon / (4.0 * static_cast<double>(k_));
  // Truncated score floor T = (fk − γ)·N, in counts. May be negative.
  const double truncation =
      static_cast<double>(fk_count_) -
      result.gamma * static_cast<double>(n_);
  // Envelope score for implicit candidates (support <= floor−1).
  const double envelope =
      std::max(truncation, static_cast<double>(floor_support_) - 1.0);

  std::vector<SupportGroup> groups = GroupBySupport(explicit_);
  std::unordered_set<Itemset, ItemsetHash> taken;
  std::vector<Itemset> selected;
  std::vector<double> exact_counts;
  selected.reserve(k_);

  double implicit_remaining =
      std::isinf(u_size_)
          ? std::numeric_limits<double>::infinity()
          : std::max(0.0, u_size_ - static_cast<double>(explicit_.size()));

  while (selected.size() < k_) {
    if (IsCancelled(cancel)) {
      return Status::Cancelled("TF selection cancelled mid-round");
    }
    GumbelMaxSampler sampler(&rng);
    for (size_t g = 0; g < groups.size(); ++g) {
      if (groups[g].members.empty()) continue;
      double score =
          std::max(static_cast<double>(groups[g].support), truncation);
      sampler.OfferGroup(g, factor * score,
                         static_cast<double>(groups[g].members.size()));
    }
    if (implicit_remaining > 0.0) {
      double log_count = std::isinf(implicit_remaining)
                             ? log_u_
                             : std::log(implicit_remaining);
      sampler.Offer(kImplicitKey, factor * envelope + log_count);
    }
    if (!sampler.HasWinner()) {
      return Status::Internal("TF selection ran out of candidates");
    }
    if (sampler.WinnerKey() == kImplicitKey) {
      // Materialize: uniform implicit itemset, accepted against the
      // envelope so the overall draw is exact; a rejection restarts the
      // whole round (self-normalized rejection sampling).
      Itemset candidate = SampleImplicitItemset(rng, taken);
      uint64_t support = index_.SupportOf(candidate);
      double score = std::max(static_cast<double>(support), truncation);
      double accept = std::exp(factor * (score - envelope));
      if (!rng.Bernoulli(accept)) continue;
      taken.insert(candidate);
      selected.push_back(candidate);
      exact_counts.push_back(static_cast<double>(support));
      implicit_remaining = std::isinf(implicit_remaining)
                               ? implicit_remaining
                               : implicit_remaining - 1.0;
      ++result.implicit_selected;
    } else {
      auto& group = groups[sampler.WinnerKey()];
      size_t pick = rng.UniformInt(group.members.size());
      uint32_t idx = group.members[pick];
      group.members[pick] = group.members.back();
      group.members.pop_back();
      selected.push_back(explicit_[idx].items);
      exact_counts.push_back(static_cast<double>(explicit_[idx].support));
    }
  }

  // Step 2: release Lap(2k/ε)-noised counts (frequencies noise 2k/(εN)).
  const double release_scale = 2.0 * static_cast<double>(k_) / epsilon;
  result.released.reserve(k_);
  for (size_t i = 0; i < selected.size(); ++i) {
    result.released.push_back(NoisyItemset{
        selected[i], exact_counts[i] + SampleLaplace(rng, release_scale)});
  }
  return result;
}

Result<TfResult> TfRunner::RunLaplace(double epsilon, Rng& rng,
                                      const CancelToken* cancel) const {
  TfResult result;
  FillDiagnostics(epsilon, &result);

  const double noise_scale = 4.0 * static_cast<double>(k_) / epsilon;
  const double truncation =
      static_cast<double>(fk_count_) - result.gamma * static_cast<double>(n_);
  const double envelope =
      std::max(truncation, static_cast<double>(floor_support_) - 1.0);

  // Noisy truncated scores of every explicit candidate.
  struct Scored {
    double score;
    uint32_t idx;
  };
  std::vector<Scored> scored;
  scored.reserve(explicit_.size());
  for (uint32_t i = 0; i < explicit_.size(); ++i) {
    double base =
        std::max(static_cast<double>(explicit_[i].support), truncation);
    scored.push_back(Scored{base + SampleLaplace(rng, noise_scale), i});
  }
  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) { return a.score > b.score; });

  // Implicit mass: lazily stream the largest noisy scores of the
  // remaining |U|−|E| candidates (all at the envelope score — exact in
  // the non-degenerate regime, a documented upper-bound approximation
  // when the floor truncates above fk−γ).
  double implicit_count_d =
      std::isinf(u_size_)
          ? 9e18
          : std::max(0.0, u_size_ - static_cast<double>(explicit_.size()));
  uint64_t implicit_count = static_cast<uint64_t>(
      std::min(implicit_count_d, 9e18));

  std::unordered_set<Itemset, ItemsetHash> taken;
  std::vector<Itemset> selected;
  std::vector<double> exact_counts;
  size_t next_explicit = 0;
  LaplaceTopOrderStatistics implicit_stream(std::max<uint64_t>(1,
                                                               implicit_count),
                                            noise_scale);
  bool implicit_available = implicit_count > 0;
  double implicit_next = implicit_available
                             ? envelope + implicit_stream.Next(rng)
                             : -std::numeric_limits<double>::infinity();

  while (selected.size() < k_) {
    if (IsCancelled(cancel)) {
      return Status::Cancelled("TF-Laplace selection cancelled mid-round");
    }
    bool take_explicit;
    if (next_explicit < scored.size() && implicit_available) {
      take_explicit = scored[next_explicit].score >= implicit_next;
    } else if (next_explicit < scored.size()) {
      take_explicit = true;
    } else if (implicit_available) {
      take_explicit = false;
    } else {
      return Status::Internal("TF-Laplace ran out of candidates");
    }
    if (take_explicit) {
      uint32_t idx = scored[next_explicit].idx;
      ++next_explicit;
      selected.push_back(explicit_[idx].items);
      exact_counts.push_back(static_cast<double>(explicit_[idx].support));
    } else {
      Itemset candidate = SampleImplicitItemset(rng, taken);
      taken.insert(candidate);
      uint64_t support = index_.SupportOf(candidate);
      selected.push_back(candidate);
      exact_counts.push_back(static_cast<double>(support));
      ++result.implicit_selected;
      if (implicit_stream.HasNext()) {
        implicit_next = envelope + implicit_stream.Next(rng);
      } else {
        implicit_available = false;
      }
    }
  }

  const double release_scale = 2.0 * static_cast<double>(k_) / epsilon;
  result.released.reserve(k_);
  for (size_t i = 0; i < selected.size(); ++i) {
    result.released.push_back(NoisyItemset{
        selected[i], exact_counts[i] + SampleLaplace(rng, release_scale)});
  }
  return result;
}

}  // namespace privbasis
