// The TF baseline (Bhaskar, Laxman, Smith, Thakurta, KDD'10): release the
// top k itemsets of length at most m under ε-DP using truncated
// frequencies f̂(X) = max(f(X), fk − γ).
//
// Budget split (per the paper): ε/2 selects the k itemsets, ε/2 releases
// their frequencies with Lap(2k/(εN)) noise each.
//
// Selection operates over U = all itemsets of length ≤ m without ever
// materializing U:
//   * Candidates with support above a mined floor are *explicit* (exact
//     truncated scores).
//   * The rest are *implicit*: under truncation they share the score
//     fk − γ when the floor reaches (fk−γ)N (the non-degenerate regime);
//     otherwise their scores vary below the floor and we sample them
//     exactly by rejection against the floor envelope. Either way one
//     aggregate Gumbel (or a lazy Laplace order-statistics stream, for
//     the Laplace variant) represents the whole implicit mass, and a
//     winning implicit draw is materialized as a uniform random
//     ≤ m-itemset outside the explicit set.
#ifndef PRIVBASIS_BASELINE_TF_H_
#define PRIVBASIS_BASELINE_TF_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "baseline/gamma.h"
#include "common/rng.h"
#include "common/status.h"
#include "data/transaction_db.h"
#include "data/vertical_index.h"
#include "dp/budget.h"
#include "fim/miner.h"

namespace privbasis {

/// TF configuration.
struct TfOptions {
  /// Maximum itemset length m. The paper reports TF at the m giving the
  /// best precision per dataset/k.
  size_t m = 2;
  /// Error-probability parameter ρ of Equation 3 (paper: 0.9).
  double rho = 0.9;
  /// Selection mechanism: repeated exponential mechanism (primary; used
  /// in the paper's experiments) or Laplace-perturbed truncated scores.
  enum class Selection { kExponentialMechanism, kLaplaceNoise };
  Selection selection = Selection::kExponentialMechanism;
  /// Cap on the mined explicit candidate set; the mining floor rises
  /// until the set fits.
  uint64_t explicit_limit = 1'000'000;
};

/// One TF release.
struct TfResult {
  /// k itemsets with noisy counts, in selection order.
  std::vector<NoisyItemset> released;
  // Diagnostics:
  double gamma = 0.0;            ///< γ (frequency units)
  double truncated_freq = 0.0;   ///< fk − γ
  bool degenerate = false;       ///< fk − γ ≤ 0 (no pruning possible)
  size_t explicit_candidates = 0;
  size_t implicit_selected = 0;  ///< how many winners came from the
                                 ///< implicit (blind-sampled) mass
};

/// Shares the expensive data-dependent preprocessing (top-k mining and
/// the explicit candidate set) across many Run() calls with different ε —
/// the preprocessing is identical for all of them.
class TfRunner {
 public:
  /// Mines the exact top-k (length ≤ m) for fk and the explicit candidate
  /// set, and builds the support index used to materialize implicit
  /// winners. A fired `cancel` token aborts the mines with kCancelled
  /// (the per-call token is not retained by the runner).
  static Result<TfRunner> Create(const TransactionDatabase& db, size_t k,
                                 TfOptions options,
                                 const CancelToken* cancel = nullptr);

  /// One ε-DP release. If `accountant` is non-null, ε is charged to it
  /// (and stays charged if `cancel` fires mid-selection — noise was
  /// already drawn; the sampler unwinds with kCancelled at the next
  /// selection round).
  Result<TfResult> Run(double epsilon, Rng& rng,
                       PrivacyAccountant* accountant = nullptr,
                       const CancelToken* cancel = nullptr) const;

  /// Equation-3 effectiveness diagnostics at a given ε.
  TfEffectiveness Effectiveness(double epsilon) const;

  uint64_t fk_count() const { return fk_count_; }
  size_t num_explicit() const { return explicit_.size(); }
  uint64_t floor_support() const { return floor_support_; }

 private:
  TfRunner(const TransactionDatabase* db, size_t k, TfOptions options);

  /// Uniform random itemset of size ≤ m over the universe, rejecting
  /// members of the explicit set and `taken`.
  Itemset SampleImplicitItemset(
      Rng& rng, const std::unordered_set<Itemset, ItemsetHash>& taken) const;

  Result<TfResult> RunExponential(double epsilon, Rng& rng,
                                  const CancelToken* cancel) const;
  Result<TfResult> RunLaplace(double epsilon, Rng& rng,
                              const CancelToken* cancel) const;
  void FillDiagnostics(double epsilon, TfResult* result) const;

  const TransactionDatabase* db_;
  size_t k_;
  TfOptions options_;
  VerticalIndex index_;
  uint64_t n_ = 0;
  double log_u_ = 0.0;           ///< ln|U|
  double u_size_ = 0.0;          ///< |U| as double (may be huge but finite)
  uint64_t fk_count_ = 0;        ///< support of the k-th itemset, length ≤ m
  uint64_t floor_support_ = 1;   ///< explicit set = supports ≥ this
  std::vector<FrequentItemset> explicit_;
  std::unordered_set<Itemset, ItemsetHash> explicit_lookup_;
  std::vector<double> size_log_weights_;  ///< log C(|I|, j), j = 1..m
};

}  // namespace privbasis

#endif  // PRIVBASIS_BASELINE_TF_H_
