#include "baseline/gamma.h"

#include <cmath>

#include "common/math_util.h"

namespace privbasis {

double TfLogCandidateSpace(uint64_t universe, size_t m) {
  return LogCandidateSpaceSize(universe, m);
}

double TfGamma(uint64_t n, size_t k, double epsilon, double rho,
               double log_u) {
  double kd = static_cast<double>(k);
  return 4.0 * kd / (epsilon * static_cast<double>(n)) *
         (std::log(kd / rho) + log_u);
}

TfEffectiveness ComputeTfEffectiveness(uint64_t universe, uint64_t n,
                                       uint64_t fk_count, size_t k, size_t m,
                                       double epsilon, double rho) {
  TfEffectiveness eff;
  eff.k = k;
  eff.fk_count = fk_count;
  eff.m = m;
  eff.log_u = TfLogCandidateSpace(universe, m);
  double gamma = TfGamma(n, k, epsilon, rho, eff.log_u);
  eff.gamma_count = gamma * static_cast<double>(n);
  eff.degenerate = eff.gamma_count >= static_cast<double>(fk_count);
  return eff;
}

}  // namespace privbasis
