// The TF method's truncation parameter (Bhaskar et al., Equation 3):
//
//   γ = (4k / (ε·N)) · (ln(k/ρ) + ln|U|),   |U| = Σ_{i=1..m} C(|I|, i)
//
// Itemsets with frequency below fk − γ need not be enumerated — unless
// γ ≥ fk, in which case truncation prunes nothing and the method
// degenerates (the paper's §3.1 analysis and Table 2(b)).
#ifndef PRIVBASIS_BASELINE_GAMMA_H_
#define PRIVBASIS_BASELINE_GAMMA_H_

#include <cstddef>
#include <cstdint>

namespace privbasis {

/// ln|U| for universe size `universe` and length cap `m`.
double TfLogCandidateSpace(uint64_t universe, size_t m);

/// γ in frequency units. `epsilon` is the full TF budget (Equation 3).
double TfGamma(uint64_t n, size_t k, double epsilon, double rho,
               double log_u);

/// One row of the paper's Table 2(b).
struct TfEffectiveness {
  size_t k = 0;
  uint64_t fk_count = 0;   ///< fk·N
  size_t m = 0;
  double log_u = 0.0;      ///< ln|U|
  double gamma_count = 0;  ///< γ·N
  bool degenerate = false; ///< γ ≥ fk: truncation is completely ineffective
};

/// Evaluates TF effectiveness for a dataset configuration.
TfEffectiveness ComputeTfEffectiveness(uint64_t universe, uint64_t n,
                                       uint64_t fk_count, size_t k, size_t m,
                                       double epsilon, double rho);

}  // namespace privbasis

#endif  // PRIVBASIS_BASELINE_GAMMA_H_
