// Privacy amplification by subsampling: spend a larger mechanism budget
// on a Poisson q-subsample while meeting the same end-to-end ε.
//
// On large datasets the subsample's binomial error can be much smaller
// than the Laplace noise the amplified budget saves — this example
// measures the trade on a kosarak-style clickstream.
//
//   ./amplification
#include <cstdio>

#include "common/rng.h"
#include "core/amplified.h"
#include "core/privbasis.h"
#include "data/synthetic.h"
#include "dp/amplification.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"

int main() {
  using namespace privbasis;
  const size_t k = 100;
  const double epsilon = 0.4;

  auto db = GenerateDataset(SyntheticProfile::Kosarak(/*scale=*/0.2), 88);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf("Clickstream: %zu sessions; end-to-end budget epsilon=%.2f\n\n",
              db->NumTransactions(), epsilon);

  auto truth = ComputeGroundTruth(*db, k);
  if (!truth.ok()) {
    std::fprintf(stderr, "%s\n", truth.status().ToString().c_str());
    return 1;
  }

  std::printf("%-22s %-10s %-8s %-8s\n", "configuration", "mech eps",
              "FNR", "RE");
  // Baseline: the whole dataset at epsilon.
  {
    PrivBasisOptions options;
    options.fk1_support_hint = truth->fk1_support_eta11;
    Rng rng(1);
    auto result = RunPrivBasis(*db, k, epsilon, rng, options);
    if (!result.ok()) return 1;
    UtilityMetrics m =
        ComputeUtility(truth->topk.itemsets, result->topk, *truth->index);
    std::printf("%-22s %-10.3f %-8.3f %-8.3f\n", "full data", epsilon,
                m.fnr, m.relative_error);
  }
  // Subsampled variants: smaller q buys a bigger mechanism budget.
  for (double q : {0.75, 0.5, 0.25}) {
    AmplifiedOptions options;
    options.sampling_rate = q;
    Rng rng(static_cast<uint64_t>(q * 1000));
    auto result = RunPrivBasisSubsampled(*db, k, epsilon, rng, options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    UtilityMetrics m =
        ComputeUtility(truth->topk.itemsets, result->topk, *truth->index);
    char label[32];
    std::snprintf(label, sizeof(label), "q=%.2f subsample", q);
    std::printf("%-22s %-10.3f %-8.3f %-8.3f\n", label,
                MechanismEpsilonForTarget(q, epsilon), m.fnr,
                m.relative_error);
  }
  std::printf(
      "\nAll rows satisfy the same end-to-end %.2f-DP guarantee; the\n"
      "subsampled rows trade sampling error for reduced Laplace noise.\n",
      epsilon);
  return 0;
}
