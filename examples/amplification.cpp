// Privacy amplification by subsampling: spend a larger mechanism budget
// on a Poisson q-subsample while meeting the same end-to-end ε — one
// QuerySpec knob on the Engine.
//
// On large datasets the subsample's binomial error can be much smaller
// than the Laplace noise the amplified budget saves — this example
// measures the trade on a kosarak-style clickstream, with every variant
// metered against the same Dataset ledger.
//
//   ./amplification
#include <cstdio>

#include "data/synthetic.h"
#include "dp/amplification.h"
#include "engine/engine.h"
#include "eval/metrics.h"

int main() {
  using namespace privbasis;
  const size_t k = 100;
  const double epsilon = 0.4;

  auto dataset =
      Dataset::FromProfile(SyntheticProfile::Kosarak(/*scale=*/0.2), 88);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const Dataset& ds = **dataset;
  std::printf("Clickstream: %zu sessions; end-to-end budget epsilon=%.2f\n\n",
              ds.db().NumTransactions(), epsilon);

  auto truth = ds.Truth(k);
  if (!truth.ok()) {
    std::fprintf(stderr, "%s\n", truth.status().ToString().c_str());
    return 1;
  }

  std::printf("%-22s %-10s %-8s %-8s %-10s\n", "configuration", "mech eps",
              "FNR", "RE", "eps spent");
  // Baseline: the whole dataset at epsilon.
  {
    auto release = Engine::Run(
        ds, QuerySpec().WithTopK(k).WithEpsilon(epsilon).WithSeed(1));
    if (!release.ok()) return 1;
    UtilityMetrics m = ComputeUtility((*truth)->topk.itemsets,
                                      release->itemsets, *(*truth)->index);
    std::printf("%-22s %-10.3f %-8.3f %-8.3f %-10.3f\n", "full data",
                epsilon, m.fnr, m.relative_error, release->epsilon_spent);
  }
  // Subsampled variants: smaller q buys a bigger mechanism budget.
  for (double q : {0.75, 0.5, 0.25}) {
    auto release = Engine::Run(
        ds, QuerySpec()
                .WithTopK(k)
                .WithEpsilon(epsilon)
                .WithAmplification(q)
                .WithSeed(static_cast<uint64_t>(q * 1000)));
    if (!release.ok()) {
      std::fprintf(stderr, "%s\n", release.status().ToString().c_str());
      return 1;
    }
    UtilityMetrics m = ComputeUtility((*truth)->topk.itemsets,
                                      release->itemsets, *(*truth)->index);
    char label[32];
    std::snprintf(label, sizeof(label), "q=%.2f subsample", q);
    std::printf("%-22s %-10.3f %-8.3f %-8.3f %-10.3f\n", label,
                MechanismEpsilonForTarget(q, epsilon), m.fnr,
                m.relative_error, release->epsilon_spent);
  }
  std::printf(
      "\nAll rows satisfy the same end-to-end %.2f-DP guarantee; the\n"
      "subsampled rows trade sampling error for reduced Laplace noise.\n"
      "Ledger total across the four queries: %.3f\n",
      epsilon, ds.accountant()->spent_epsilon());
  return 0;
}
