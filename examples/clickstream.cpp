// Clickstream scenario (kosarak-style): publish all page-sets visited by
// more than a θ fraction of sessions — the threshold flavour of the FIM
// problem. The paper reduces it to top-k (§4: pick k so that fk ≥ θ >
// f_{k+1}); this example shows that reduction plus a look inside the
// multi-basis machinery.
//
//   ./clickstream
#include <cstdio>

#include "common/rng.h"
#include "core/privbasis.h"
#include "data/synthetic.h"
#include "fim/topk.h"

int main() {
  using namespace privbasis;
  const double theta = 0.02;  // "frequent" = in >= 2% of sessions
  const double epsilon = 1.0;

  auto db = GenerateDataset(SyntheticProfile::Kosarak(/*scale=*/0.05), 77);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  const double n = static_cast<double>(db->NumTransactions());
  std::printf("Clickstream: %zu sessions over %u pages; theta = %.3f\n",
              db->NumTransactions(), db->UniverseSize(), theta);

  // Threshold -> k reduction. (This step uses the exact data; a fully
  // private deployment would estimate k from a noisy prefix — the paper
  // treats the conversion as given.)
  const uint64_t theta_count = static_cast<uint64_t>(theta * n);
  size_t k = 0;
  {
    auto probe = MineTopK(*db, 2000);
    if (!probe.ok()) return 1;
    for (const auto& fi : probe->itemsets) {
      if (fi.support >= theta_count) ++k;
    }
  }
  std::printf("Reduction: %zu itemsets sit above theta -> k = %zu\n\n", k, k);

  Rng rng(31337);
  auto result = RunPrivBasis(*db, k, epsilon, rng);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  // Inspect the basis set PrivBasis chose: the dimensionality reduction
  // at the heart of the method.
  std::printf("lambda = %u, lambda2 = %u\n", result->lambda,
              result->lambda2);
  std::printf("basis set: w = %zu, max length = %zu\n",
              result->basis_set.Width(), result->basis_set.Length());
  for (size_t i = 0; i < std::min<size_t>(result->basis_set.Width(), 8); ++i) {
    std::printf("  B%zu = %s\n", i + 1,
                result->basis_set.basis(i).ToString().c_str());
  }
  if (result->basis_set.Width() > 8) std::printf("  ...\n");

  // Keep only releases whose *noisy* frequency clears theta.
  size_t kept = 0;
  for (const auto& itemset : result->topk) {
    if (itemset.noisy_count >= static_cast<double>(theta_count)) ++kept;
  }
  std::printf("\nReleased %zu itemsets with noisy frequency >= theta "
              "(of %zu candidates released)\n", kept, result->topk.size());
  for (size_t i = 0; i < std::min<size_t>(result->topk.size(), 10); ++i) {
    const auto& itemset = result->topk[i];
    std::printf("  %-20s noisy f = %.4f\n", itemset.items.ToString().c_str(),
                itemset.noisy_count / n);
  }
  return 0;
}
