// Clickstream scenario (kosarak-style): publish all page-sets visited by
// more than a θ fraction of sessions — the threshold flavour of the FIM
// problem, served by the Engine's threshold mode (the paper's §4
// reduction to top-k plus a post-processing filter on noisy
// frequencies). Also a look inside the multi-basis machinery.
//
//   ./clickstream
#include <cstdio>

#include "data/synthetic.h"
#include "engine/engine.h"

int main() {
  using namespace privbasis;
  const double theta = 0.02;  // "frequent" = in >= 2% of sessions
  const double epsilon = 1.0;

  auto dataset =
      Dataset::FromProfile(SyntheticProfile::Kosarak(/*scale=*/0.05), 77);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const Dataset& ds = **dataset;
  const double n = static_cast<double>(ds.db().NumTransactions());
  std::printf("Clickstream: %zu sessions over %u pages; theta = %.3f\n\n",
              ds.db().NumTransactions(), ds.db().UniverseSize(), theta);

  // Threshold mode: the Engine runs the top-k machinery at the candidate
  // cap and keeps releases whose *noisy* frequency clears θ — a pure
  // post-processing filter, so the privacy cost is one PrivBasis run.
  auto release = Engine::Run(
      ds, QuerySpec()
              .WithThreshold(theta, /*k_cap=*/400)
              .WithEpsilon(epsilon)
              .WithSeed(31337));
  if (!release.ok()) {
    std::fprintf(stderr, "%s\n", release.status().ToString().c_str());
    return 1;
  }

  // Inspect the basis set PrivBasis chose: the dimensionality reduction
  // at the heart of the method.
  std::printf("lambda = %u, lambda2 = %u\n", release->lambda,
              release->lambda2);
  std::printf("basis set: w = %zu, max length = %zu\n",
              release->basis_set.Width(), release->basis_set.Length());
  for (size_t i = 0; i < std::min<size_t>(release->basis_set.Width(), 8);
       ++i) {
    std::printf("  B%zu = %s\n", i + 1,
                release->basis_set.basis(i).ToString().c_str());
  }
  if (release->basis_set.Width() > 8) std::printf("  ...\n");

  std::printf("\nReleased %zu page-sets with noisy frequency >= theta "
              "(epsilon spent %.3f)\n",
              release->itemsets.size(), release->epsilon_spent);
  for (size_t i = 0; i < std::min<size_t>(release->itemsets.size(), 10);
       ++i) {
    const auto& itemset = release->itemsets[i];
    std::printf("  %-20s noisy f = %.4f\n", itemset.items.ToString().c_str(),
                itemset.noisy_count / n);
  }
  return 0;
}
