// Market-basket scenario (the paper's retail motivation): a store wants
// to publish its most frequent co-purchase patterns without exposing any
// single receipt.
//
// The example walks the full decision a practitioner faces:
//   1. mine the exact (non-private) top-k as the yardstick,
//   2. release under several privacy budgets through one shared Dataset,
//   3. measure what each budget costs in FNR / relative error,
//   4. inspect which co-purchase patterns survived.
//
//   ./market_basket
#include <cstdio>

#include "data/synthetic.h"
#include "engine/engine.h"
#include "eval/metrics.h"

int main() {
  using namespace privbasis;
  const size_t k = 50;

  auto dataset =
      Dataset::FromProfile(SyntheticProfile::Retail(/*scale=*/0.4), 2024);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const Dataset& ds = **dataset;
  std::printf("Retail-style dataset: %zu receipts, %u products\n",
              ds.db().NumTransactions(), ds.db().UniverseSize());

  // 1. The exact answer (what we could publish with no privacy at all),
  //    cached on the handle — every query below reuses this mining pass.
  auto truth = ds.Truth(k);
  if (!truth.ok()) {
    std::fprintf(stderr, "%s\n", truth.status().ToString().c_str());
    return 1;
  }
  std::printf("Exact top-%zu: lambda=%u items, %u pairs, %u triples\n\n", k,
              (*truth)->stats.lambda, (*truth)->stats.lambda2,
              (*truth)->stats.lambda3);

  // 2./3. Private releases across budgets — one QuerySpec, varied ε.
  std::printf("%-8s %-8s %-8s %-10s %s\n", "epsilon", "FNR", "RE", "basisW",
              "basisLen");
  for (double epsilon : {0.25, 0.5, 1.0, 2.0}) {
    QuerySpec spec = QuerySpec().WithTopK(k).WithEpsilon(epsilon).WithSeed(
        900 + static_cast<uint64_t>(epsilon * 100));
    auto release = Engine::Run(ds, spec);
    if (!release.ok()) {
      std::fprintf(stderr, "%s\n", release.status().ToString().c_str());
      return 1;
    }
    UtilityMetrics m = ComputeUtility((*truth)->topk.itemsets,
                                      release->itemsets, *(*truth)->index);
    std::printf("%-8.2f %-8.3f %-8.3f %-10zu %zu\n", epsilon, m.fnr,
                m.relative_error, release->basis_set.Width(),
                release->basis_set.Length());
  }

  // 4. The patterns a moderate budget actually preserves.
  auto release =
      Engine::Run(ds, QuerySpec().WithTopK(k).WithEpsilon(1.0).WithSeed(4242));
  if (!release.ok()) return 1;
  double n = static_cast<double>(ds.db().NumTransactions());
  std::printf("\nCo-purchase patterns (size >= 2) released at epsilon=1:\n");
  for (const auto& itemset : release->itemsets) {
    if (itemset.items.size() < 2) continue;
    std::printf("  %-24s noisy f = %.4f  (exact %.4f)\n",
                itemset.items.ToString().c_str(), itemset.noisy_count / n,
                (*truth)->index->FrequencyOf(itemset.items));
  }
  return 0;
}
