// Quickstart: release the top-20 frequent itemsets of a small transaction
// dataset under 1.0-differential privacy, in ~30 lines.
//
//   ./quickstart
#include <cstdio>

#include "common/rng.h"
#include "core/privbasis.h"
#include "data/synthetic.h"

int main() {
  using namespace privbasis;

  // 1. Get a dataset. Any TransactionDatabase works — build one with
  //    TransactionDatabase::Builder, load FIMI text with ReadFimiFile, or
  //    generate a synthetic one as here.
  auto db = GenerateDataset(SyntheticProfile::Mushroom(/*scale=*/0.5),
                            /*seed=*/42);
  if (!db.ok()) {
    std::fprintf(stderr, "dataset: %s\n", db.status().ToString().c_str());
    return 1;
  }

  // 2. Run PrivBasis: top k = 20 itemsets with total privacy budget
  //    epsilon = 1.0. All randomness flows through an explicit Rng.
  Rng rng(7);
  auto result = RunPrivBasis(*db, /*k=*/20, /*epsilon=*/1.0, rng);
  if (!result.ok()) {
    std::fprintf(stderr, "privbasis: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // 3. Use the release. Noisy frequencies = noisy_count / N.
  double n = static_cast<double>(db->NumTransactions());
  std::printf("lambda=%u  basis: %s\n", result->lambda,
              result->basis_set.ToString().c_str());
  for (const auto& itemset : result->topk) {
    std::printf("  %-24s noisy f = %.4f\n", itemset.items.ToString().c_str(),
                itemset.noisy_count / n);
  }
  return 0;
}
