// Quickstart: the canonical Engine example — release the top-20 frequent
// itemsets of a small transaction dataset under 1.0-differential privacy.
//
//   ./quickstart
#include <cstdio>

#include "data/synthetic.h"
#include "engine/engine.h"

int main() {
  using namespace privbasis;

  // 1. Open a Dataset handle. Any source works — take ownership of a
  //    TransactionDatabase with Dataset::Create, load FIMI text with
  //    Dataset::FromFimiFile, or generate a synthetic profile as here.
  //    The handle owns the privacy-budget ledger: this dataset may spend
  //    at most ε = 3.0 across ALL queries, ever.
  auto dataset = Dataset::FromProfile(SyntheticProfile::Mushroom(0.5),
                                      /*seed=*/42, {.total_epsilon = 3.0});
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }

  // 2. Run a query: top k = 20 itemsets with budget ε = 1.0 drawn from
  //    the dataset's ledger. The spec validates centrally; all
  //    randomness derives from the seed, so reruns are bit-identical.
  auto release = Engine::Run(
      *dataset, QuerySpec().WithTopK(20).WithEpsilon(1.0).WithSeed(7));
  if (!release.ok()) {
    std::fprintf(stderr, "query: %s\n", release.status().ToString().c_str());
    return 1;
  }

  // 3. Use the release. Noisy frequencies = noisy_count / N.
  double n = static_cast<double>((*dataset)->db().NumTransactions());
  std::printf("lambda=%u  basis: %s\n", release->lambda,
              release->basis_set.ToString().c_str());
  for (const auto& itemset : release->itemsets) {
    std::printf("  %-24s noisy f = %.4f\n", itemset.items.ToString().c_str(),
                itemset.noisy_count / n);
  }

  // 4. The ledger metered the spend: a second identical query costs
  //    another 1.0, and the Engine refuses (kBudgetExhausted) once the
  //    dataset's 3.0 runs dry — no silent over-spending.
  std::printf("budget: spent %.2f of %.2f, %.2f remaining\n",
              release->epsilon_spent_total,
              (*dataset)->accountant()->total_epsilon(),
              release->epsilon_remaining);
  return 0;
}
