// Search-log scenario (AOL-style): the λ ≈ k regime where nearly all top
// itemsets are single keywords. This is the paper's Figure 5 setting —
// the one place the TF baseline is competitive — so the example runs both
// methods side by side through one Engine facade (the TF preprocessing is
// cached on the Dataset handle and reused across every ε) and prints the
// (small) gap.
//
//   ./search_log
#include <cstdio>

#include "data/synthetic.h"
#include "engine/engine.h"
#include "eval/metrics.h"

int main() {
  using namespace privbasis;
  const size_t k = 100;

  // Note: the AOL regime needs a large N — the top-200 frequency cutoff
  // is ~0.02, and at small scale the DP noise would swamp it entirely.
  auto dataset =
      Dataset::FromProfile(SyntheticProfile::Aol(/*scale=*/0.4), 555);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const Dataset& ds = **dataset;
  std::printf("Search log: %zu users, %u distinct keywords\n",
              ds.db().NumTransactions(), ds.db().UniverseSize());

  auto truth = ds.Truth(k);
  if (!truth.ok()) {
    std::fprintf(stderr, "%s\n", truth.status().ToString().c_str());
    return 1;
  }
  std::printf("Exact top-%zu: lambda = %u (nearly all singletons), "
              "%u pairs, %u triples\n\n",
              k, (*truth)->stats.lambda, (*truth)->stats.lambda2,
              (*truth)->stats.lambda3);

  // TF degenerates gracefully here: m = 1 turns it into private frequent-
  // keyword mining over the full keyword candidate space. The expensive
  // TfRunner preprocessing is built once, on first use, on the handle.
  QuerySpec tf_spec;
  tf_spec.WithMethod(QueryMethod::kTruncatedFrequency).WithTopK(k);
  tf_spec.tf.m = 1;

  std::printf("%-8s | %-10s %-10s | %-10s %-10s\n", "epsilon", "PB FNR",
              "PB RE", "TF FNR", "TF RE");
  for (double epsilon : {0.5, 0.75, 1.0}) {
    const uint64_t seed = 1000 + static_cast<uint64_t>(epsilon * 100);
    auto pb = Engine::Run(
        ds, QuerySpec().WithTopK(k).WithEpsilon(epsilon).WithSeed(seed));
    if (!pb.ok()) {
      std::fprintf(stderr, "%s\n", pb.status().ToString().c_str());
      return 1;
    }
    UtilityMetrics pb_m = ComputeUtility((*truth)->topk.itemsets,
                                         pb->itemsets, *(*truth)->index);

    auto tf = Engine::Run(
        ds, QuerySpec(tf_spec).WithEpsilon(epsilon).WithSeed(seed + 1));
    if (!tf.ok()) {
      std::fprintf(stderr, "%s\n", tf.status().ToString().c_str());
      return 1;
    }
    UtilityMetrics tf_m = ComputeUtility((*truth)->topk.itemsets,
                                         tf->itemsets, *(*truth)->index);

    std::printf("%-8.2f | %-10.3f %-10.3f | %-10.3f %-10.3f\n", epsilon,
                pb_m.fnr, pb_m.relative_error, tf_m.fnr,
                tf_m.relative_error);
  }
  std::printf("\nIn this regime PB's advantage narrows (paper §5, Figure 5):"
              "\nboth methods are effectively selecting frequent keywords.\n");
  return 0;
}
