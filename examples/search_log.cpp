// Search-log scenario (AOL-style): the λ ≈ k regime where nearly all top
// itemsets are single keywords. This is the paper's Figure 5 setting —
// the one place the TF baseline is competitive — so the example runs both
// methods side by side and prints the (small) gap.
//
//   ./search_log
#include <cstdio>
#include <memory>

#include "baseline/tf.h"
#include "common/rng.h"
#include "core/privbasis.h"
#include "data/synthetic.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"

int main() {
  using namespace privbasis;
  const size_t k = 100;

  // Note: the AOL regime needs a large N — the top-200 frequency cutoff
  // is ~0.02, and at small scale the DP noise would swamp it entirely.
  auto db = GenerateDataset(SyntheticProfile::Aol(/*scale=*/0.4), 555);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf("Search log: %zu users, %u distinct keywords\n",
              db->NumTransactions(), db->UniverseSize());

  auto truth = ComputeGroundTruth(*db, k);
  if (!truth.ok()) {
    std::fprintf(stderr, "%s\n", truth.status().ToString().c_str());
    return 1;
  }
  std::printf("Exact top-%zu: lambda = %u (nearly all singletons), "
              "%u pairs, %u triples\n\n",
              k, truth->stats.lambda, truth->stats.lambda2,
              truth->stats.lambda3);

  // TF degenerates gracefully here: m = 1 turns it into private frequent-
  // keyword mining over the full 2.3M-keyword candidate space.
  TfOptions tf_options;
  tf_options.m = 1;
  auto tf_runner = TfRunner::Create(*db, k, tf_options);
  if (!tf_runner.ok()) {
    std::fprintf(stderr, "%s\n", tf_runner.status().ToString().c_str());
    return 1;
  }

  PrivBasisOptions pb_options;
  pb_options.fk1_support_hint = truth->fk1_support_eta11;

  std::printf("%-8s | %-10s %-10s | %-10s %-10s\n", "epsilon", "PB FNR",
              "PB RE", "TF FNR", "TF RE");
  for (double epsilon : {0.5, 0.75, 1.0}) {
    Rng rng(1000 + static_cast<uint64_t>(epsilon * 100));
    auto pb = RunPrivBasis(*db, k, epsilon, rng, pb_options);
    if (!pb.ok()) {
      std::fprintf(stderr, "%s\n", pb.status().ToString().c_str());
      return 1;
    }
    UtilityMetrics pb_m =
        ComputeUtility(truth->topk.itemsets, pb->topk, *truth->index);

    auto tf = tf_runner->Run(epsilon, rng);
    if (!tf.ok()) {
      std::fprintf(stderr, "%s\n", tf.status().ToString().c_str());
      return 1;
    }
    UtilityMetrics tf_m =
        ComputeUtility(truth->topk.itemsets, tf->released, *truth->index);

    std::printf("%-8.2f | %-10.3f %-10.3f | %-10.3f %-10.3f\n", epsilon,
                pb_m.fnr, pb_m.relative_error, tf_m.fnr,
                tf_m.relative_error);
  }
  std::printf("\nIn this regime PB's advantage narrows (paper §5, Figure 5):"
              "\nboth methods are effectively selecting frequent keywords.\n");
  return 0;
}
