#!/usr/bin/env python3
"""Coordinator + shard-worker smoke for sharded scatter-gather execution.

Boots two privbasis_shardd workers and a privbasis_server coordinator
running with --shard-workers, plus a plain single-process reference
server, and checks the distributed guarantees end to end over real
sockets. Exit 0 on pass, 1 on the first violated guarantee:

  * registration ships shard slices to the fleet, and a query served
    through the coordinator is byte-identical to the unsharded
    reference server at the same seed (exact counting consumes no RNG,
    so fan-out must not perturb the release);
  * same seed through the fleet twice => identical release;
  * /v1/stats reports the fleet (shards.workers == shards.fanout == 2);
  * kill -9 of one worker mid-query (its scan parked on the
    shard_worker_op failpoint) fails the query with a 5xx and charges
    the FULL reservation — a dead worker never under-charges ε and
    never yields a partial release;
  * with the worker still dead, the next query is refused up front,
    again at full charge (fail closed, no partial counting).

    tools/shard_smoke.py --server-bin build/privbasis_server \
        --worker-bin build/privbasis_shardd

stdlib only; reuses the HTTP helpers from privbasis_client.py.
"""

import argparse
import os
import re
import signal
import subprocess
import sys
import threading
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from privbasis_client import ServerError, call, wait_ready  # noqa: E402

# How long a parked worker scan sleeps (failpoint), and how long the
# harness waits before kill -9: the kill must land while the query is
# inside the fan-out, not before it reaches the worker.
PARK_MS = 2000
KILL_AFTER_S = 0.7


class Child:
    """A child process whose startup line announces its address."""

    def __init__(self, argv, log_path, pattern, env=None):
        self.log_path = log_path
        self.log = open(log_path, "w+")
        self.proc = subprocess.Popen(argv, stdout=self.log,
                                     stderr=subprocess.STDOUT,
                                     env=env, text=True)
        deadline = time.monotonic() + 30
        self.addr = None
        while time.monotonic() < deadline and self.addr is None:
            time.sleep(0.05)
            with open(log_path) as probe:
                match = re.search(pattern, probe.read())
                if match:
                    self.addr = match.group(1)
        if self.addr is None:
            self.proc.kill()
            raise SystemExit(f"{argv[0]} never printed its listen address "
                             f"(see {log_path})")

    def kill9(self):
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait()

    def stop(self):
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                self.proc.kill()
        self.log.close()


def start_worker(binary, log_path, failpoints=None):
    env = dict(os.environ)
    env.pop("PRIVBASIS_FAILPOINTS", None)
    if failpoints:
        env["PRIVBASIS_FAILPOINTS"] = failpoints
    return Child([binary, "--port", "0"], log_path,
                 r"listening (\S+:\d+)", env=env)


def start_server(binary, log_path, shard_workers=None):
    argv = [binary, "--port", "0", "--threads", "4"]
    if shard_workers:
        argv += ["--shard-workers", ",".join(shard_workers)]
    env = dict(os.environ)
    env.pop("PRIVBASIS_FAILPOINTS", None)
    return Child(argv, log_path, r"listening on (http://\S+)", env=env)


def check(condition, what):
    if not condition:
        raise SystemExit(f"FAIL: {what}")
    print(f"  ok: {what}")


def register(url):
    _, body = call(url, "POST", "/v1/datasets",
                   {"profile": "mushroom", "scale": 0.1, "seed": 11,
                    "budget": 4.0})
    return body["dataset"]


def query(url, ds, epsilon, seed):
    _, body = call(url, "POST", "/v1/query",
                   {"dataset": ds, "k": 20, "epsilon": epsilon,
                    "seed": seed})
    return body


def read_spent(url, ds):
    _, body = call(url, "GET", f"/v1/datasets/{ds}/budget")
    return body["spent"]


def run_happy_path(args, log_dir):
    print("[shard_smoke] coordinator + 2 workers vs unsharded reference")
    workers = [start_worker(args.worker_bin, f"{log_dir}/worker{i}.log")
               for i in (1, 2)]
    coord = start_server(args.server_bin, f"{log_dir}/coordinator.log",
                         [w.addr for w in workers])
    ref = start_server(args.server_bin, f"{log_dir}/reference.log")
    try:
        wait_ready(coord.addr)
        wait_ready(ref.addr)
        ds_coord = register(coord.addr)
        ds_ref = register(ref.addr)

        first = query(coord.addr, ds_coord, 0.5, seed=7)
        again = query(coord.addr, ds_coord, 0.5, seed=7)

        def release_of(body):
            # Everything but the cumulative ledger readback, which
            # advances between queries by design.
            return {k: v for k, v in body.items() if k != "budget"}

        check(release_of(first) == release_of(again),
              "same seed through the fleet => identical release")

        direct = query(ref.addr, ds_ref, 0.5, seed=7)
        check(first["itemsets"] == direct["itemsets"],
              "coordinator release == unsharded reference (bit-identical)")

        _, stats = call(coord.addr, "GET", "/v1/stats")
        check(stats["shards"]["workers"] == 2 and
              stats["shards"]["fanout"] == 2,
              "/v1/stats reports the 2-worker fleet")
        _, ref_stats = call(ref.addr, "GET", "/v1/stats")
        check(ref_stats["shards"]["workers"] == 0,
              "reference server reports no fleet")

        status, _ = call(coord.addr, "DELETE", f"/v1/datasets/{ds_coord}")
        check(status == 204, "evict broadcasts DropShard without error")
    finally:
        for child in [coord, ref] + workers:
            child.stop()


def run_kill_mid_query(args, log_dir):
    print("[shard_smoke] kill -9 one worker mid-query (failpoint-parked)")
    failpoints = f"shard_worker_op=sleep:{PARK_MS}"
    workers = [start_worker(args.worker_bin, f"{log_dir}/kworker{i}.log",
                            failpoints=failpoints)
               for i in (1, 2)]
    coord = start_server(args.server_bin, f"{log_dir}/kcoordinator.log",
                         [w.addr for w in workers])
    try:
        wait_ready(coord.addr)
        ds = register(coord.addr)

        outcome = {}

        def parked_query():
            try:
                outcome["body"] = query(coord.addr, ds, 0.5, seed=3)
            except ServerError as err:
                outcome["status"] = err.status

        thread = threading.Thread(target=parked_query)
        thread.start()
        time.sleep(KILL_AFTER_S)
        workers[1].kill9()
        thread.join(timeout=120)
        check(not thread.is_alive(), "parked query completes after kill")
        check(outcome.get("status", 0) >= 500,
              f"killed worker mid-query => 5xx, no partial release "
              f"(got {outcome.get('status', outcome.get('body'))})")
        spent = read_spent(coord.addr, ds)
        check(abs(spent - 0.5) < 1e-9,
              f"aborted query charged the FULL 0.5 reservation "
              f"(spent={spent})")

        # Worker still dead: fan-out is refused up front, again at full
        # charge — the coordinator never falls back to partial counting.
        status = None
        try:
            query(coord.addr, ds, 0.25, seed=4)
        except ServerError as err:
            status = err.status
        check(status is not None and status >= 500,
              f"dead worker => up-front 5xx (got {status})")
        spent = read_spent(coord.addr, ds)
        check(abs(spent - 0.75) < 1e-9,
              f"up-front refusal still charges in full (spent={spent})")
    finally:
        for child in [coord] + workers:
            child.stop()


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--server-bin", default="build/privbasis_server")
    parser.add_argument("--worker-bin", default="build/privbasis_shardd")
    parser.add_argument("--log-dir", default="/tmp/shard_smoke")
    args = parser.parse_args()
    os.makedirs(args.log_dir, exist_ok=True)

    run_happy_path(args, args.log_dir)
    run_kill_mid_query(args, args.log_dir)
    print("[shard_smoke] PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
