// privbasis_server: the standalone query-server binary over the Engine
// facade (server/server.h).
//
//   privbasis_server --port 8080 --threads 8
//   privbasis_server --port 8080 --preload mushroom --preload-scale 0.5
//                    --preload-budget 4.0
//   privbasis_server --port 8080 --state-dir /var/lib/privbasis
//                    --fsync commit --preload-config datasets.json
//
// With --state-dir, the budget ledger and registered datasets survive
// restarts (kill -9 included); the server answers 503 on every route
// until boot-time recovery finishes. --preload-config names datasets,
// so a restart recovers them instead of re-registering duplicates:
//
//   {"datasets": [{"name": "retail", "profile": "retail",
//                  "budget": 4.0},
//                 {"name": "mydata", "path": "transactions.dat"}]}
//
// Prints one "listening ..." line (and one "preloaded ..."/"recovered
// ..." line per dataset) to stdout, then serves until SIGINT/SIGTERM.
// Exit codes: 0 clean shutdown, 1 startup failure, 2 bad usage.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "data/synthetic.h"
#include "server/server.h"

namespace privbasis::server {
namespace {

struct ServerCliOptions {
  ServerOptions server;
  std::string preload_profile;  // empty = none
  double preload_scale = 1.0;
  uint64_t preload_seed = 42;
  double preload_budget = 0.0;  // 0 = unlimited
  std::string preload_input;    // FIMI file; alternative to profile
  std::string preload_config;   // JSON file of named datasets
};

void PrintUsage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--host H] [--port P] [--threads N]\n"
      "          [--deadline-ms MS] [--max-body BYTES]\n"
      "          [--slo-ms MS] [--max-queue N]\n"
      "          [--batch-window-us US] [--max-batch N]\n"
      "          [--shard-workers H1:P1,H2:P2,...]\n"
      "          [--allow-path-datasets on|off]\n"
      "          [--state-dir DIR] [--fsync always|commit|never]\n"
      "          [--preload PROFILE | --preload-input FILE]\n"
      "          [--preload-scale S] [--preload-seed SEED]\n"
      "          [--preload-budget EPS] [--preload-config FILE]\n"
      "\n"
      "  --host H           bind address (default 127.0.0.1)\n"
      "  --port P           port; 0 picks an ephemeral one (default 0)\n"
      "  --threads N        connection workers (default: PRIVBASIS_THREADS)\n"
      "  --deadline-ms MS   per-request wall-clock budget (default 30000)\n"
      "  --max-body BYTES   request body ceiling (default 1048576)\n"
      "  --slo-ms MS        admission SLO: shed (429 + Retry-After) any\n"
      "                     query whose predicted latency exceeds MS\n"
      "                     (default 0 = no cost-model shedding)\n"
      "  --max-queue N      bounded worker queue: shed new arrivals once\n"
      "                     N connections are already queued (503 +\n"
      "                     Retry-After; default 0 = unbounded)\n"
      "  --batch-window-us US\n"
      "                     same-dataset query batching: concurrent\n"
      "                     admitted queries on one dataset share their\n"
      "                     counting scans, waiting up to US microseconds\n"
      "                     for co-riders. Releases stay bit-identical to\n"
      "                     unbatched runs at the same seed; epsilon is\n"
      "                     charged per query (default: the\n"
      "                     PRIVBASIS_BATCH_WINDOW_US env, else 0 = off)\n"
      "  --max-batch N      queries per fused scan (default: the\n"
      "                     PRIVBASIS_MAX_BATCH env, else 8)\n"
      "  --shard-workers L  comma-separated privbasis_shardd addresses\n"
      "                     (host:port or bare port). Turns this server\n"
      "                     into a scatter-gather coordinator: datasets\n"
      "                     are partitioned across the workers and every\n"
      "                     query counts through them. Results are\n"
      "                     bit-identical to serving locally; a dead\n"
      "                     worker fails queries closed (full ε charge)\n"
      "  --allow-path-datasets on|off\n"
      "                     accept {\"path\": ...} registrations over\n"
      "                     HTTP (default off; preloads are unaffected)\n"
      "  --state-dir DIR    durable state (budget WAL + dataset\n"
      "                     snapshots); survives kill -9. Default: none\n"
      "  --fsync MODE       WAL durability: always | commit (default) |\n"
      "                     never (needs --state-dir)\n"
      "  --preload NAME     register a synthetic dataset at startup:\n"
      "                     retail mushroom pumsb-star kosarak aol\n"
      "  --preload-input F  register a FIMI transaction file at startup\n"
      "  --preload-scale S  synthetic size multiplier (default 1.0)\n"
      "  --preload-seed S   synthetic generation seed (default 42)\n"
      "  --preload-budget E total dataset epsilon (default unlimited)\n"
      "  --preload-config F JSON file of NAMED datasets ({\"datasets\":\n"
      "                     [{\"name\", \"path\"|\"profile\"|..., ...}]});\n"
      "                     names already recovered from --state-dir are\n"
      "                     skipped, so restarts don't duplicate\n",
      argv0);
}

std::optional<ServerCliOptions> ParseArgs(int argc, char** argv) {
  ServerCliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") return std::nullopt;
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", flag.c_str());
      return std::nullopt;
    }
    const char* value = argv[++i];
    if (flag == "--host") {
      options.server.host = value;
    } else if (flag == "--port") {
      options.server.port = static_cast<uint16_t>(std::atoi(value));
    } else if (flag == "--threads") {
      options.server.num_threads =
          static_cast<size_t>(std::strtoull(value, nullptr, 10));
    } else if (flag == "--deadline-ms") {
      options.server.request_deadline_ms = std::atoll(value);
    } else if (flag == "--max-body") {
      options.server.max_body_bytes =
          static_cast<size_t>(std::strtoull(value, nullptr, 10));
    } else if (flag == "--slo-ms") {
      options.server.admission.slo_ms = std::atoll(value);
    } else if (flag == "--max-queue") {
      options.server.admission.max_queue_depth =
          static_cast<size_t>(std::strtoull(value, nullptr, 10));
    } else if (flag == "--batch-window-us") {
      options.server.batch_window_us = std::atoll(value);
    } else if (flag == "--max-batch") {
      options.server.max_batch =
          static_cast<size_t>(std::strtoull(value, nullptr, 10));
      if (options.server.max_batch == 0) {
        std::fprintf(stderr, "--max-batch must be >= 1\n");
        return std::nullopt;
      }
    } else if (flag == "--shard-workers") {
      std::string list = value;
      size_t start = 0;
      while (start <= list.size()) {
        const size_t comma = list.find(',', start);
        const std::string spec =
            list.substr(start, comma == std::string::npos ? std::string::npos
                                                          : comma - start);
        if (!spec.empty()) options.server.shard_workers.push_back(spec);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
      if (options.server.shard_workers.empty()) {
        std::fprintf(stderr, "--shard-workers needs at least one address\n");
        return std::nullopt;
      }
    } else if (flag == "--allow-path-datasets") {
      // Value-taking like every other flag: "on"/"off".
      options.server.registry_limits.allow_paths =
          std::string(value) == "on";
    } else if (flag == "--state-dir") {
      options.server.state_dir = value;
    } else if (flag == "--fsync") {
      auto mode = store::ParseFsyncMode(value);
      if (!mode.ok()) {
        std::fprintf(stderr, "%s\n", mode.status().ToString().c_str());
        return std::nullopt;
      }
      options.server.fsync_mode = *mode;
    } else if (flag == "--preload") {
      options.preload_profile = value;
    } else if (flag == "--preload-input") {
      options.preload_input = value;
    } else if (flag == "--preload-scale") {
      options.preload_scale = std::strtod(value, nullptr);
    } else if (flag == "--preload-seed") {
      options.preload_seed = std::strtoull(value, nullptr, 10);
    } else if (flag == "--preload-budget") {
      options.preload_budget = std::strtod(value, nullptr);
      if (!(options.preload_budget > 0.0)) {
        std::fprintf(stderr, "--preload-budget must be > 0\n");
        return std::nullopt;
      }
    } else if (flag == "--preload-config") {
      options.preload_config = value;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return std::nullopt;
    }
  }
  return options;
}

volatile std::sig_atomic_t g_shutdown = 0;
void HandleSignal(int) { g_shutdown = 1; }

/// Registers every named dataset in a --preload-config file, skipping
/// names already in the registry (recovered from --state-dir).
Status PreloadFromConfig(QueryServer& server, const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot read " + path);
  std::ostringstream text;
  text << in.rdbuf();
  PRIVBASIS_ASSIGN_OR_RETURN(json::Value config, json::Parse(text.str()));
  const json::Value* datasets = config.Find("datasets");
  if (datasets == nullptr) {
    return Status::InvalidArgument(path + ": missing \"datasets\"");
  }
  PRIVBASIS_ASSIGN_OR_RETURN(const json::Value::Array* rows,
                             datasets->GetArray());
  for (const json::Value& row : *rows) {
    const json::Value* name_value = row.Find("name");
    if (name_value == nullptr) {
      return Status::InvalidArgument(path +
                                     ": every dataset needs a \"name\"");
    }
    PRIVBASIS_ASSIGN_OR_RETURN(std::string name, name_value->GetString());
    if (server.registry().Find(name) != nullptr) {
      std::printf("recovered %s\n", name.c_str());
      continue;
    }
    PRIVBASIS_ASSIGN_OR_RETURN(
        std::shared_ptr<Dataset> dataset,
        server.registry().BuildFromJson(row, /*operator_config=*/true));
    PRIVBASIS_ASSIGN_OR_RETURN(
        std::string id, server.registry().RegisterNamed(name, dataset));
    std::printf("preloaded %s\n", id.c_str());
  }
  return Status::OK();
}

int RunServer(const ServerCliOptions& options) {
  QueryServer server(options.server);
  if (Status started = server.Start(); !started.ok()) {
    std::fprintf(stderr, "start: %s\n", started.ToString().c_str());
    return 1;
  }
  // Preloads (and their "recovered" skip check) need the recovered
  // registry; the socket is already listening and answering 503.
  if (Status ready = server.WaitUntilReady(); !ready.ok()) {
    std::fprintf(stderr, "recovery: %s\n", ready.ToString().c_str());
    return 1;
  }

  if (!options.preload_config.empty()) {
    if (Status preloaded = PreloadFromConfig(server, options.preload_config);
        !preloaded.ok()) {
      std::fprintf(stderr, "preload-config: %s\n",
                   preloaded.ToString().c_str());
      return 1;
    }
  }
  if (!options.preload_input.empty()) {
    // Operator config bypasses the wire gate: file paths over HTTP stay
    // behind --allow-path-datasets regardless of preloads.
    Dataset::Options dataset_options;
    if (options.preload_budget > 0.0) {
      dataset_options.total_epsilon = options.preload_budget;
    }
    auto dataset = Dataset::FromFimiFile(options.preload_input,
                                         dataset_options);
    if (!dataset.ok()) {
      std::fprintf(stderr, "preload: %s\n",
                   dataset.status().ToString().c_str());
      return 1;
    }
    auto id = server.registry().Register(*dataset);
    if (!id.ok()) {
      std::fprintf(stderr, "preload: %s\n", id.status().ToString().c_str());
      return 1;
    }
    std::printf("preloaded %s as %s\n", options.preload_input.c_str(),
                id->c_str());
  } else if (!options.preload_profile.empty()) {
    json::Value request;
    request.Set("profile", options.preload_profile);
    request.Set("scale", options.preload_scale);
    request.Set("seed", options.preload_seed);
    if (options.preload_budget > 0.0) {
      request.Set("budget", options.preload_budget);
    }
    auto registered = server.registry().RegisterFromJson(request);
    if (!registered.ok()) {
      std::fprintf(stderr, "preload: %s\n",
                   registered.status().ToString().c_str());
      return 1;
    }
    std::printf("preloaded %s as %s\n", options.preload_profile.c_str(),
                registered->id.c_str());
  }

  std::printf("listening on http://%s:%u\n", server.host().c_str(),
              server.port());
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_shutdown == 0) {
    timespec ts{0, 100'000'000};  // 100 ms
    nanosleep(&ts, nullptr);
  }
  std::printf("shutting down\n");
  server.Stop();
  return 0;
}

}  // namespace
}  // namespace privbasis::server

int main(int argc, char** argv) {
  auto options = privbasis::server::ParseArgs(argc, argv);
  if (!options.has_value()) {
    privbasis::server::PrintUsage(argv[0]);
    return 2;
  }
  return privbasis::server::RunServer(*options);
}
