#!/usr/bin/env python3
"""HTTP client for privbasis_server — manual poking and the CI smoke.

Subcommand style:
    tools/privbasis_client.py --server http://127.0.0.1:8080 health
    tools/privbasis_client.py register --profile mushroom --scale 0.3 \
        --budget 4.0
    tools/privbasis_client.py query --dataset ds-1 --k 20 --epsilon 0.5 \
        --seed 7
    tools/privbasis_client.py budget ds-1

Smoke mode (used by CI; exercises every endpoint and the error
contract, exits nonzero on the first violation):
    tools/privbasis_client.py --server http://127.0.0.1:8080 --smoke

stdlib only (http.client); no third-party deps. Connections are kept
alive and reused across calls (the server speaks HTTP/1.1 keep-alive),
and a 429/503 carrying a Retry-After header — the server's shed and
recovering responses — is honored with a bounded wait before retrying.
"""

import argparse
import http.client
import json
import sys
import threading
import time
import urllib.parse


class ServerError(Exception):
    """Non-2xx with parsed body (when JSON) and the Retry-After header
    (None when the server sent none — e.g. budget-exhausted 429s)."""

    def __init__(self, status, body, retry_after=None):
        super().__init__(f"HTTP {status}: {body}")
        self.status = status
        self.body = body
        self.retry_after = retry_after


# Connection-refused retries (set by --connect-retries): a server that is
# still binding its socket — or replaying its budget WAL after a crash —
# refuses connections for a moment; retrying with backoff turns that
# startup race into a wait instead of a failure.
CONNECT_RETRIES = 0

# How many times one call() honors a Retry-After on 429/503 before
# surfacing the refusal. A 429 WITHOUT the header (budget exhausted —
# waiting buys nothing) is never retried.
RETRY_AFTER_LIMIT = 2
RETRY_AFTER_CAP_S = 5.0

# Keep-alive connection per (host, port), reused across calls. Cached
# per thread: http.client connections are not thread-safe, and harnesses
# (crash_recovery_test, overload_test) hammer from many threads at once.
_local = threading.local()


def _connections():
    conns = getattr(_local, "connections", None)
    if conns is None:
        conns = _local.connections = {}
    return conns


def _connection(server, timeout):
    parts = urllib.parse.urlsplit(server if "//" in server
                                  else "//" + server)
    key = (parts.hostname, parts.port or 80)
    conn = _connections().get(key)
    if conn is None:
        conn = http.client.HTTPConnection(key[0], key[1], timeout=timeout)
        _connections()[key] = conn
    conn.timeout = timeout
    if conn.sock is not None:
        conn.sock.settimeout(timeout)
    return key, conn


def _drop(key):
    conn = _connections().pop(key, None)
    if conn is not None:
        conn.close()


def call(server, method, path, payload=None, timeout=60):
    data = None
    headers = {}
    if payload is not None:
        data = json.dumps(payload).encode()
        headers["Content-Type"] = "application/json"
    connect_attempts = 0
    reopened_stale = False
    honored = 0
    while True:
        key, conn = _connection(server, timeout)
        try:
            conn.request(method, path, body=data, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            status = response.status
            retry_after = response.getheader("Retry-After")
            if response.will_close:
                _drop(key)
        except ConnectionRefusedError:
            _drop(key)
            if connect_attempts < CONNECT_RETRIES:
                time.sleep(min(0.1 * (2 ** connect_attempts), 2.0))
                connect_attempts += 1
                continue
            raise
        except (ConnectionError, BrokenPipeError,
                http.client.BadStatusLine, http.client.CannotSendRequest):
            # A parked keep-alive connection the server has since closed
            # (idle timeout, request cap, restart): reopen once and
            # resend. Only once — a second failure is a real error.
            _drop(key)
            if not reopened_stale:
                reopened_stale = True
                continue
            raise
        except Exception:
            _drop(key)
            raise
        try:
            body = json.loads(raw) if raw else None
        except json.JSONDecodeError:
            body = raw.decode(errors="replace")
        if 200 <= status < 300:
            return status, body
        # Shed/recovering refusals name their own backoff; honor it
        # (bounded) — the retried query spends no extra budget, the
        # server refused before reserving any.
        if (status in (429, 503) and retry_after is not None
                and honored < RETRY_AFTER_LIMIT):
            try:
                delay = float(retry_after)
            except ValueError:
                delay = 1.0
            honored += 1
            time.sleep(min(max(delay, 0.0), RETRY_AFTER_CAP_S))
            continue
        raise ServerError(status, body, retry_after)


def wait_ready(server, attempts=100, delay=0.1):
    """Polls /healthz until the server answers (startup race in CI)."""
    for _ in range(attempts):
        try:
            status, body = call(server, "GET", "/healthz", timeout=5)
            if status == 200 and body.get("status") == "ok":
                return body
        except (ServerError, OSError, http.client.HTTPException):
            pass
        time.sleep(delay)
    raise SystemExit(f"server at {server} never became healthy")


def expect(condition, what):
    if not condition:
        raise SystemExit(f"SMOKE FAIL: {what}")
    print(f"  ok: {what}")


def expect_error(status, fn, what):
    try:
        fn()
    except ServerError as err:
        expect(err.status == status,
               f"{what} -> {status} (got {err.status})")
        return err
    raise SystemExit(f"SMOKE FAIL: {what}: expected HTTP {status}, got 2xx")


def run_smoke(server):
    print(f"[smoke] {server}")
    health = wait_ready(server)
    print(f"  healthz: {health}")

    # Register a small synthetic dataset with a finite budget.
    status, registered = call(server, "POST", "/v1/datasets",
                              {"profile": "mushroom", "scale": 0.1,
                               "seed": 11, "budget": 2.0})
    expect(status == 201 and registered["dataset"].startswith("ds-"),
           "register synthetic dataset")
    ds = registered["dataset"]

    # Inline registration too.
    status, inline = call(server, "POST", "/v1/datasets",
                          {"transactions": [[0, 1, 2], [0, 1], [1, 2],
                                            [0, 1, 2], [2]]})
    expect(status == 201, "register inline dataset")

    # Identical seeds must serve identical releases (determinism over
    # the wire).
    spec = {"dataset": ds, "k": 15, "epsilon": 0.5, "seed": 7}
    status, first = call(server, "POST", "/v1/query", spec)
    expect(status == 200 and first["itemsets"], "query returns itemsets")
    _, second = call(server, "POST", "/v1/query", spec)
    expect(first["itemsets"] == second["itemsets"],
           "same seed => identical release")
    expect(first["budget"]["spent"] <= 0.5 + 1e-9,
           "spend within requested epsilon")

    # Admission counters see both queries (admitted + completed even
    # with shedding disabled — the counters always run).
    status, stats = call(server, "GET", "/v1/stats")
    expect(status == 200 and
           stats["queries"]["admitted"] >= 2 and
           stats["queries"]["completed"] >= 2 and
           stats["queries"]["admitted"] >= stats["queries"]["completed"],
           "/v1/stats admission counters")

    # Ledger readback reflects both queries.
    _, budget = call(server, "GET", f"/v1/datasets/{ds}/budget")
    expect(abs(budget["spent"] -
               (first["budget"]["spent"] + second["budget"]["spent"]))
           < 1e-9, "ledger total equals sum of query spends")
    expect(len(budget["ledger"]) >= 2, "ledger itemizes both queries")

    # Error contract.
    expect_error(400, lambda: call(server, "POST", "/v1/query",
                                   {"dataset": ds, "k": 0}),
                 "invalid spec (k=0)")
    expect_error(400, lambda: call(server, "POST", "/v1/query",
                                   {"dataset": ds, "epsilom": 1.0}),
                 "unknown spec key")
    expect_error(400, lambda: call(server, "POST", "/v1/datasets",
                                   {"profile": "mushroom", "bugdet": 2.0}),
                 "typoed dataset key must not register fail-open")
    expect_error(404, lambda: call(server, "POST", "/v1/query",
                                   {"dataset": "ds-does-not-exist"}),
                 "unknown dataset")
    # A body over the server's max-body ceiling (default 1 MiB).
    expect_error(413, lambda: call(server, "POST", "/v1/datasets",
                                   {"transactions": [[1, 2, 3]] * 200000}),
                 "oversized body")

    # A reservation beyond the dataset's total budget must be refused
    # with 429 and leave the ledger untouched.
    _, before = call(server, "GET", f"/v1/datasets/{ds}/budget")
    expect_error(429, lambda: call(server, "POST", "/v1/query",
                                   {"dataset": ds, "k": 5, "epsilon": 2.5,
                                    "seed": 10}),
                 "budget overdraft")
    _, after = call(server, "GET", f"/v1/datasets/{ds}/budget")
    expect(before["spent"] == after["spent"] and
           len(before["ledger"]) == len(after["ledger"]),
           "refusal leaves ledger unchanged")

    # Eviction.
    status, _ = call(server, "DELETE", f"/v1/datasets/{inline['dataset']}")
    expect(status == 204, "evict dataset")
    expect_error(404,
                 lambda: call(server, "GET",
                              f"/v1/datasets/{inline['dataset']}/budget"),
                 "evicted dataset is gone")

    print("[smoke] PASS")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--server", default="http://127.0.0.1:8080")
    parser.add_argument("--smoke", action="store_true",
                        help="run the endpoint/error-contract smoke suite")
    parser.add_argument("--connect-retries", type=int, default=0,
                        help="retry connection-refused this many times "
                             "with exponential backoff (0.1s doubling, "
                             "2s cap) — for servers still starting up")
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("health")

    register = sub.add_parser("register")
    source = register.add_mutually_exclusive_group(required=True)
    source.add_argument("--path")
    source.add_argument("--profile")
    register.add_argument("--scale", type=float, default=1.0)
    register.add_argument("--seed", type=int, default=42)
    register.add_argument("--budget", type=float)

    budget = sub.add_parser("budget")
    budget.add_argument("dataset")

    evict = sub.add_parser("evict")
    evict.add_argument("dataset")

    query = sub.add_parser("query")
    query.add_argument("--dataset", required=True)
    query.add_argument("--method", choices=["pb", "tf"], default="pb")
    query.add_argument("--k", type=int, default=100)
    query.add_argument("--epsilon", type=float, default=1.0)
    query.add_argument("--seed", type=int, default=42)
    query.add_argument("--theta", type=float)
    query.add_argument("--sample", type=float)
    query.add_argument("--rules", type=float,
                       help="derive rules at this min confidence")

    args = parser.parse_args()
    global CONNECT_RETRIES
    CONNECT_RETRIES = max(0, args.connect_retries)
    if args.smoke:
        run_smoke(args.server)
        return 0
    if args.command is None:
        parser.print_help()
        return 2

    try:
        if args.command == "health":
            _, body = call(args.server, "GET", "/healthz")
        elif args.command == "register":
            payload = {}
            if args.path:
                payload["path"] = args.path
            else:
                payload["profile"] = args.profile
                payload["scale"] = args.scale
                payload["seed"] = args.seed
            if args.budget is not None:
                payload["budget"] = args.budget
            _, body = call(args.server, "POST", "/v1/datasets", payload)
        elif args.command == "budget":
            _, body = call(args.server, "GET",
                           f"/v1/datasets/{args.dataset}/budget")
        elif args.command == "evict":
            status, body = call(args.server, "DELETE",
                                f"/v1/datasets/{args.dataset}")
            body = body or {"evicted": args.dataset, "status": status}
        else:  # query
            payload = {"dataset": args.dataset, "method": args.method,
                       "k": args.k, "epsilon": args.epsilon,
                       "seed": args.seed}
            if args.theta is not None:
                payload["theta"] = args.theta
            if args.sample is not None:
                payload["sampling_rate"] = args.sample
            if args.rules is not None:
                payload["rules"] = {"min_confidence": args.rules}
            _, body = call(args.server, "POST", "/v1/query", payload)
    except ServerError as err:
        print(json.dumps({"http_status": err.status, "body": err.body},
                         indent=2))
        return 1
    print(json.dumps(body, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
