// privbasis_shardd: a shard-worker process for sharded scatter-gather
// execution (src/shard).
//
//   privbasis_shardd --port 9101
//   privbasis_shardd --host 127.0.0.1 --port 0 --threads 4
//
// Holds shard slices pushed by a privbasis_server coordinator running
// with --shard-workers, and answers exact counting requests over the
// length-prefixed shard wire protocol (shard/wire.h). The worker is
// privacy-blind: no randomness, no budget — killing it can fail a
// query (which the coordinator charges in full, fail closed) but never
// leak ε.
//
// Prints one "listening HOST:PORT" line to stdout, then serves until
// SIGINT/SIGTERM. Exit codes: 0 clean shutdown, 1 startup failure,
// 2 bad usage. PRIVBASIS_FAILPOINTS arms fault-injection sites
// ("shard_worker_op") for the kill-mid-query harness.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <optional>
#include <string>

#include "shard/worker.h"

namespace privbasis {
namespace {

void PrintUsage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host H] [--port P] [--threads N]\n"
               "\n"
               "  --host H     bind address (default 127.0.0.1)\n"
               "  --port P     port; 0 picks an ephemeral one (default 0)\n"
               "  --threads N  scan parallelism (default: PRIVBASIS_THREADS)\n",
               argv0);
}

std::optional<ShardWorkerOptions> ParseArgs(int argc, char** argv) {
  ShardWorkerOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") return std::nullopt;
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", flag.c_str());
      return std::nullopt;
    }
    const char* value = argv[++i];
    if (flag == "--host") {
      options.host = value;
    } else if (flag == "--port") {
      options.port = static_cast<uint16_t>(std::atoi(value));
    } else if (flag == "--threads") {
      options.num_threads =
          static_cast<size_t>(std::strtoull(value, nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return std::nullopt;
    }
  }
  return options;
}

volatile std::sig_atomic_t g_shutdown = 0;
void HandleSignal(int) { g_shutdown = 1; }

int RunWorker(const ShardWorkerOptions& options) {
  auto worker = ShardWorker::Start(options);
  if (!worker.ok()) {
    std::fprintf(stderr, "start: %s\n", worker.status().ToString().c_str());
    return 1;
  }
  std::printf("listening %s:%u\n", options.host.c_str(), (*worker)->port());
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_shutdown == 0) {
    timespec ts{0, 100'000'000};  // 100 ms
    nanosleep(&ts, nullptr);
  }
  std::printf("shutting down\n");
  (*worker)->Stop();
  return 0;
}

}  // namespace
}  // namespace privbasis

int main(int argc, char** argv) {
  auto options = privbasis::ParseArgs(argc, argv);
  if (!options.has_value()) {
    privbasis::PrintUsage(argv[0]);
    return 2;
  }
  return privbasis::RunWorker(*options);
}
