#!/usr/bin/env python3
"""privacy_lint: static checks for the DP invariants the type system can't see.

The differential-privacy guarantees of this codebase rest on a handful of
source-level disciplines that neither the compiler nor the thread-safety
analysis can enforce. This lint encodes them as lightweight lexical checks
(comment/string-stripped regex + brace-depth scoping — no libclang
dependency) so CI fails when a refactor quietly violates one:

  noise-containment   Randomness (Rng, SampleLaplace, the Laplace/noisy-max
                      mechanisms) may only appear in the layers that are
                      ALLOWED to randomize: src/common (definitions),
                      src/dp, src/engine, src/core, src/baseline. The
                      serving, storage, sharding, and counting layers
                      (src/server, src/store, src/shard, src/data, src/fim)
                      are privacy-blind by design — a shard worker that
                      could draw noise could also double-draw it, and a
                      storage layer that touches an Rng could persist
                      something derived from unreleased randomness.

  lease-resolution    Every function that Acquire()s a BudgetLease must
                      visibly resolve it: Commit()/CommitAll() it, move it
                      onward, or return it. A lease that is silently
                      dropped still fails closed (the destructor charges
                      the full reservation), but code that RELIES on that
                      is almost always a missing-commit bug — the query
                      pays worst case instead of actual spend.

  wire-after-noise    A function that draws noise must not also touch the
                      shard wire (shardwire::). Exact integer counts merge
                      across shards BEFORE any noise draw; a noised value
                      serialized back over the wire would let one query
                      consume two independent draws (breaking the ε
                      accounting) or leak a worker-local noised count.

  failpoint-manifest  Every fault-injection site name — static
                      failpoint::Hit("...") literals, the dynamic
                      <prefix>_{write,rename,append,sync} families minted
                      by store/io, and every site referenced by tests and
                      harnesses — must be listed in
                      tools/failpoint_sites.txt. An unregistered site is
                      invisible to the crash-recovery matrix; a stale
                      manifest entry means coverage silently evaporated.

False positives are suppressed in tools/privacy_lint_suppressions.txt,
one `rule path-substring` pair per line. `--self-test` runs each rule
against a seeded violation and fails unless every rule fires.

Usage:
  tools/privacy_lint.py [--root .] [--self-test] [-v]
Exit status: 0 clean, 1 findings, 2 self-test failure.
"""

import argparse
import os
import re
import sys

NOISE_TOKENS = re.compile(
    r"\b(Rng|SampleLaplace|LaplaceInverseCdf|LaplaceMechanism|"
    r"LaplaceNoiseVariance|NoisyMax|LaplaceOrderStatistics)\b")
NOISE_ALLOWED_DIRS = (
    "src/common/", "src/dp/", "src/engine/", "src/core/", "src/baseline/")
PRIVACY_BLIND_DIRS = (
    "src/server/", "src/store/", "src/shard/", "src/data/", "src/fim/")

WIRE_TOKEN = re.compile(r"\bshardwire::")

LEASE_BIND = re.compile(r"\bBudgetLease\s+(\w+)\s*[,;)]")
LEASE_RESOLVED = (
    ".Commit(", ".CommitAll(", "std::move({name})", "return {name};")

HIT_LITERAL = re.compile(r'failpoint::Hit\(\s*"([^"]+)"')
# Dynamic families: AtomicWriteFile(..., "prefix") mints prefix_write +
# prefix_rename; AppendFile::Open(..., "prefix") mints prefix_append +
# prefix_sync (store/io.h documents both).
ATOMIC_WRITE_PREFIX = re.compile(r'AtomicWriteFile\([^;]*?"(\w+)"\s*\)')
APPEND_OPEN_PREFIX = re.compile(r'AppendFile::Open\([^;]*?"(\w+)"\s*\)')
# Sites referenced by tests/harnesses: failpoint::Configure("spec") and
# PRIVBASIS_FAILPOINTS="spec" strings; a spec is comma-separated
# site=action[:arg][@skip] terms.
SPEC_STRING = re.compile(
    r'(?:Configure\(|PRIVBASIS_FAILPOINTS[^"]*)"((?:\w+=[\w:@]+,?)+)"')

MANIFEST = "tools/failpoint_sites.txt"
SUPPRESSIONS = "tools/privacy_lint_suppressions.txt"

LINE_COMMENT = re.compile(r"//[^\n]*")
BLOCK_COMMENT = re.compile(r"/\*.*?\*/", re.DOTALL)
STRING_LIT = re.compile(r'"(?:[^"\\\n]|\\.)*"')
CHAR_LIT = re.compile(r"'(?:[^'\\\n]|\\.)'")


def strip_code(text):
    """Blanks comments/strings/chars, preserving line structure."""
    def blank(match):
        return re.sub(r"[^\n]", " ", match.group(0))
    text = BLOCK_COMMENT.sub(blank, text)
    text = LINE_COMMENT.sub(blank, text)
    text = STRING_LIT.sub(blank, text)
    return CHAR_LIT.sub(blank, text)


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


def enclosing_scope(code, pos):
    """(start, end) of the innermost top-level brace block containing pos.

    Tracks depth from the file start; a "function scope" for our purposes
    is the outermost depth-0 → depth-1 block (namespace braces in this
    tree wrap whole files, so scan inside the last depth-1 block when the
    file opens with a namespace — handled by treating `namespace ... {`
    blocks as transparent).
    """
    # Positions where non-namespace depth-0/1 blocks open.
    opens = []  # stack of (pos, transparent)
    best = (0, len(code))
    i = 0
    while i < len(code):
        ch = code[i]
        if ch == "{":
            head = code[max(0, i - 120):i]
            transparent = re.search(r"\bnamespace\b[^;{}]*$", head) is not None
            transparent = transparent or re.search(
                r"\bextern\s+\"C\"\s*$", head) is not None
            opens.append((i, transparent))
        elif ch == "}":
            if opens:
                start, transparent = opens.pop()
                if not transparent and start <= pos <= i:
                    # Innermost non-transparent block wins only if every
                    # enclosing block still on the stack is transparent —
                    # that makes it the function body, not an if-block.
                    if all(t for _, t in opens):
                        best = (start, i + 1)
        i += 1
    return best


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def check_noise_containment(path, code, raw):
    del raw
    findings = []
    if not path.startswith(PRIVACY_BLIND_DIRS):
        return findings
    for match in NOISE_TOKENS.finditer(code):
        findings.append(Finding(
            "noise-containment", path, line_of(code, match.start()),
            f"randomness token `{match.group(1)}` in privacy-blind layer "
            f"(allowed only under {', '.join(NOISE_ALLOWED_DIRS)})"))
    return findings


def check_lease_resolution(path, code, raw):
    del raw
    findings = []
    if not path.startswith("src/"):
        return findings
    for match in LEASE_BIND.finditer(code):
        name = match.group(1)
        start, end = enclosing_scope(code, match.start())
        scope = code[match.start():end]
        resolved = any(
            pattern.format(name=name) in scope
            for pattern in (f"{name}.Commit(", f"{name}.CommitAll(",
                            f"std::move({name})", f"return {name};"))
        # The lease's own implementation file defines Commit/move itself.
        if path.endswith("accountant.cc") or path.endswith("accountant.h"):
            continue
        if not resolved:
            findings.append(Finding(
                "lease-resolution", path, line_of(code, match.start()),
                f"BudgetLease `{name}` is neither committed nor moved on "
                "any path in this scope; the destructor will charge the "
                "FULL reservation — if that is intended, commit "
                "explicitly or suppress"))
    return findings


def check_wire_after_noise(path, code, raw):
    del raw
    findings = []
    if not path.startswith("src/"):
        return findings
    for match in NOISE_TOKENS.finditer(code):
        start, end = enclosing_scope(code, match.start())
        scope = code[start:end]
        wire = WIRE_TOKEN.search(scope)
        if wire:
            findings.append(Finding(
                "wire-after-noise", path, line_of(code, match.start()),
                f"`{match.group(1)}` and shardwire:: in one scope: noised "
                "values must never cross the shard wire (exact counts "
                "merge before any draw)"))
    return findings


def collect_sites(root, rel_paths):
    """All failpoint site names the tree defines or references."""
    sites = {}  # name -> first "path:line"
    for path in rel_paths:
        raw = open(os.path.join(root, path), encoding="utf-8",
                   errors="replace").read()
        if path.endswith((".cc", ".h")):
            code = raw  # literals matter here; do not strip strings
            for match in HIT_LITERAL.finditer(code):
                sites.setdefault(match.group(1),
                                 f"{path}:{line_of(code, match.start())}")
            for match in ATOMIC_WRITE_PREFIX.finditer(code):
                for op in ("write", "rename"):
                    sites.setdefault(
                        f"{match.group(1)}_{op}",
                        f"{path}:{line_of(code, match.start())}")
            for match in APPEND_OPEN_PREFIX.finditer(code):
                for op in ("append", "sync"):
                    sites.setdefault(
                        f"{match.group(1)}_{op}",
                        f"{path}:{line_of(code, match.start())}")
        for match in SPEC_STRING.finditer(raw):
            for term in match.group(1).split(","):
                if "=" in term:
                    sites.setdefault(
                        term.split("=", 1)[0],
                        f"{path}:{line_of(raw, match.start())}")
    return sites


def check_failpoint_manifest(root, rel_paths):
    findings = []
    manifest_path = os.path.join(root, MANIFEST)
    if not os.path.exists(manifest_path):
        return [Finding("failpoint-manifest", MANIFEST, 1,
                        "manifest file missing")]
    manifest = set()
    with open(manifest_path, encoding="utf-8") as fh:
        for line in fh:
            line = line.split("#", 1)[0].strip()
            if line:
                manifest.add(line)
    used = collect_sites(root, rel_paths)
    for name, where in sorted(used.items()):
        if name not in manifest:
            path, _, line = where.partition(":")
            findings.append(Finding(
                "failpoint-manifest", path, int(line or 1),
                f"failpoint site `{name}` is not registered in {MANIFEST}"))
    for name in sorted(manifest - set(used)):
        findings.append(Finding(
            "failpoint-manifest", MANIFEST, 1,
            f"manifest lists `{name}` but no code or test references it"))
    return findings


FILE_RULES = (check_noise_containment, check_lease_resolution,
              check_wire_after_noise)


def lint_tree(root, verbose=False):
    rel_paths = []
    for sub in ("src", "tests", "tools"):
        base = os.path.join(root, sub)
        if not os.path.isdir(base):
            continue
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if name.endswith((".cc", ".h", ".py")):
                    rel_paths.append(os.path.relpath(
                        os.path.join(dirpath, name), root))
    rel_paths.sort()

    suppressions = []
    sup_path = os.path.join(root, SUPPRESSIONS)
    if os.path.exists(sup_path):
        with open(sup_path, encoding="utf-8") as fh:
            for line in fh:
                line = line.split("#", 1)[0].strip()
                if line:
                    rule, _, path_sub = line.partition(" ")
                    suppressions.append((rule, path_sub.strip()))

    findings = []
    for path in rel_paths:
        if not path.endswith((".cc", ".h")):
            continue
        raw = open(os.path.join(root, path), encoding="utf-8",
                   errors="replace").read()
        code = strip_code(raw)
        for rule in FILE_RULES:
            findings.extend(rule(path.replace(os.sep, "/"), code, raw))
    findings.extend(check_failpoint_manifest(root, rel_paths))

    kept = []
    for finding in findings:
        if any(finding.rule == rule and path_sub in finding.path
               for rule, path_sub in suppressions):
            if verbose:
                print(f"suppressed: {finding}")
            continue
        kept.append(finding)
    return kept


SELF_TEST_CASES = {
    "noise-containment": (
        "src/shard/evil.cc",
        "namespace privbasis {\n"
        "void Leak() { Rng rng(7); (void)SampleLaplace(rng, 1.0); }\n"
        "}\n"),
    "lease-resolution": (
        "src/engine/evil.cc",
        "namespace privbasis {\n"
        "Status Spend(Accountant& a) {\n"
        "  PRIVBASIS_ASSIGN_OR_RETURN(BudgetLease lease, a.Acquire(1.0, \"x\"));\n"
        "  return Status::OK();\n"
        "}\n"
        "}\n"),
    "wire-after-noise": (
        "src/core/evil.cc",
        "namespace privbasis {\n"
        "void Ship(Rng& rng) {\n"
        "  double noised = SampleLaplace(rng, 1.0);\n"
        "  shardwire::WriteFrame(noised);\n"
        "}\n"
        "}\n"),
}


def self_test(root):
    failures = []
    for rule_name, (path, snippet) in SELF_TEST_CASES.items():
        code = strip_code(snippet)
        hits = []
        for rule in FILE_RULES:
            hits.extend(rule(path, code, snippet))
        if not any(f.rule == rule_name for f in hits):
            failures.append(f"rule `{rule_name}` did not fire on its "
                            f"seeded violation")
    # failpoint-manifest: a reference to an unregistered site must be
    # caught. Simulate by asking for sites over a synthetic file list.
    import tempfile
    with tempfile.TemporaryDirectory() as tmp:
        os.makedirs(os.path.join(tmp, "tools"))
        os.makedirs(os.path.join(tmp, "src"))
        with open(os.path.join(tmp, MANIFEST), "w", encoding="utf-8") as fh:
            fh.write("known_site\n")
        with open(os.path.join(tmp, "src/evil.cc"), "w",
                  encoding="utf-8") as fh:
            fh.write('auto a = failpoint::Hit("unregistered_site");\n'
                     'auto b = failpoint::Hit("known_site");\n')
        hits = check_failpoint_manifest(tmp, ["src/evil.cc"])
        if not any(f.rule == "failpoint-manifest" and
                   "unregistered_site" in f.message for f in hits):
            failures.append("rule `failpoint-manifest` did not flag an "
                            "unregistered site")
    # And the real tree must be clean, or CI green means nothing.
    real = lint_tree(root)
    if failures:
        for failure in failures:
            print(f"self-test FAILED: {failure}", file=sys.stderr)
        return 2
    if real:
        print("self-test FAILED: tree not clean (fix or suppress):",
              file=sys.stderr)
        for finding in real:
            print(f"  {finding}", file=sys.stderr)
        return 2
    print(f"privacy_lint self-test: all {len(SELF_TEST_CASES) + 1} rules "
          "fire on seeded violations; tree clean")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".")
    parser.add_argument("--self-test", action="store_true")
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args()
    root = os.path.abspath(args.root)
    if args.self_test:
        return self_test(root)
    findings = lint_tree(root, verbose=args.verbose)
    for finding in findings:
        print(finding)
    if findings:
        print(f"privacy_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("privacy_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
