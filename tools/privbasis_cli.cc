// privbasis_cli: command-line front end for the library.
//
// Reads a FIMI-format transaction file (or generates one of the paper's
// synthetic profiles), runs PrivBasis or the TF baseline, and prints the
// released itemsets as TSV (items, noisy count, noisy frequency).
//
// Examples:
//   privbasis_cli --input basket.dat --k 100 --epsilon 1.0
//   privbasis_cli --profile mushroom --scale 0.5 --k 50 --method tf --m 2
//   privbasis_cli --profile kosarak --scale 0.1 --threshold 0.02 --kcap 400
//   privbasis_cli --input basket.dat --k 50 --rules 0.6
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "baseline/tf.h"
#include "common/rng.h"
#include "core/association_rules.h"
#include "core/privbasis.h"
#include "core/threshold.h"
#include "data/dataset_io.h"
#include "data/dataset_stats.h"
#include "data/synthetic.h"

namespace privbasis {
namespace {

struct CliOptions {
  std::string input;      // FIMI file; empty = use profile
  std::string profile;    // retail|mushroom|pumsb-star|kosarak|aol
  double scale = 1.0;
  std::string method = "pb";  // pb | tf
  size_t k = 100;
  double epsilon = 1.0;
  uint64_t seed = 42;
  size_t m = 2;               // TF length cap
  double threshold = 0.0;     // >0: threshold mode (PB only)
  size_t k_cap = 500;         // threshold-mode candidate cap
  double rules = 0.0;         // >0: derive rules at this min confidence
  bool quiet = false;
};

void PrintUsage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--input FILE | --profile NAME [--scale S]]\n"
      "          [--method pb|tf] [--k K] [--epsilon E] [--seed SEED]\n"
      "          [--m M] [--threshold T --kcap CAP] [--rules MINCONF]\n"
      "          [--quiet]\n"
      "\n"
      "  --input FILE     FIMI-format transactions (one per line)\n"
      "  --profile NAME   synthetic dataset: retail mushroom pumsb-star\n"
      "                   kosarak aol\n"
      "  --scale S        synthetic size multiplier (default 1.0)\n"
      "  --method pb|tf   PrivBasis (default) or the Bhaskar et al.\n"
      "                   truncated-frequency baseline\n"
      "  --k K            top-k to release (default 100)\n"
      "  --epsilon E      privacy budget (default 1.0)\n"
      "  --m M            TF itemset-length cap (default 2)\n"
      "  --threshold T    release itemsets with noisy frequency >= T\n"
      "  --kcap CAP       candidate cap for threshold mode (default 500)\n"
      "  --rules C        also print association rules with confidence >= C\n"
      "  --quiet          suppress the dataset/stats banner\n",
      argv0);
}

std::optional<CliOptions> ParseArgs(int argc, char** argv) {
  CliOptions options;
  auto need_value = [&](int i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      return nullptr;
    }
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() { return need_value(i); };
    if (flag == "--help" || flag == "-h") return std::nullopt;
    if (flag == "--quiet") {
      options.quiet = true;
      continue;
    }
    const char* value = next();
    if (value == nullptr) return std::nullopt;
    ++i;
    if (flag == "--input") {
      options.input = value;
    } else if (flag == "--profile") {
      options.profile = value;
    } else if (flag == "--scale") {
      options.scale = std::strtod(value, nullptr);
    } else if (flag == "--method") {
      options.method = value;
    } else if (flag == "--k") {
      options.k = std::strtoull(value, nullptr, 10);
    } else if (flag == "--epsilon") {
      options.epsilon = std::strtod(value, nullptr);
    } else if (flag == "--seed") {
      options.seed = std::strtoull(value, nullptr, 10);
    } else if (flag == "--m") {
      options.m = std::strtoull(value, nullptr, 10);
    } else if (flag == "--threshold") {
      options.threshold = std::strtod(value, nullptr);
    } else if (flag == "--kcap") {
      options.k_cap = std::strtoull(value, nullptr, 10);
    } else if (flag == "--rules") {
      options.rules = std::strtod(value, nullptr);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return std::nullopt;
    }
  }
  if (options.input.empty() && options.profile.empty()) {
    std::fprintf(stderr, "one of --input or --profile is required\n");
    return std::nullopt;
  }
  return options;
}

Result<TransactionDatabase> LoadDataset(const CliOptions& options) {
  if (!options.input.empty()) {
    PRIVBASIS_ASSIGN_OR_RETURN(LoadedDataset loaded,
                               ReadFimiFile(options.input));
    return std::move(loaded.db);
  }
  SyntheticProfile profile;
  if (options.profile == "retail") {
    profile = SyntheticProfile::Retail(options.scale);
  } else if (options.profile == "mushroom") {
    profile = SyntheticProfile::Mushroom(options.scale);
  } else if (options.profile == "pumsb-star") {
    profile = SyntheticProfile::PumsbStar(options.scale);
  } else if (options.profile == "kosarak") {
    profile = SyntheticProfile::Kosarak(options.scale);
  } else if (options.profile == "aol") {
    profile = SyntheticProfile::Aol(options.scale);
  } else {
    return Status::InvalidArgument("unknown profile '" + options.profile +
                                   "'");
  }
  return GenerateDataset(profile, options.seed);
}

int RunCli(const CliOptions& options) {
  auto db = LoadDataset(options);
  if (!db.ok()) {
    std::fprintf(stderr, "dataset: %s\n", db.status().ToString().c_str());
    return 1;
  }
  if (!options.quiet) {
    std::fprintf(stderr, "[privbasis_cli] %s\n",
                 ComputeDatasetStats(*db).ToString().c_str());
  }
  const double n = static_cast<double>(db->NumTransactions());
  Rng rng(options.seed);

  std::vector<NoisyItemset> released;
  if (options.method == "pb") {
    if (options.threshold > 0.0) {
      auto result = RunPrivBasisThreshold(*db, options.threshold,
                                          options.k_cap, options.epsilon,
                                          rng);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      released = std::move(result).value().topk;
    } else {
      auto result = RunPrivBasis(*db, options.k, options.epsilon, rng);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      released = std::move(result).value().topk;
    }
  } else if (options.method == "tf") {
    TfOptions tf_options;
    tf_options.m = options.m;
    auto runner = TfRunner::Create(*db, options.k, tf_options);
    if (!runner.ok()) {
      std::fprintf(stderr, "%s\n", runner.status().ToString().c_str());
      return 1;
    }
    auto result = runner->Run(options.epsilon, rng);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    released = std::move(result).value().released;
  } else {
    std::fprintf(stderr, "unknown method '%s'\n", options.method.c_str());
    return 1;
  }

  std::printf("# items\tnoisy_count\tnoisy_frequency\n");
  for (const auto& itemset : released) {
    std::string items;
    for (size_t i = 0; i < itemset.items.size(); ++i) {
      if (i > 0) items += ' ';
      items += std::to_string(itemset.items[i]);
    }
    std::printf("%s\t%.2f\t%.6f\n", items.c_str(), itemset.noisy_count,
                itemset.noisy_count / n);
  }

  if (options.rules > 0.0) {
    RuleOptions rule_options;
    rule_options.min_confidence = options.rules;
    auto rules = ExtractRules(released, db->NumTransactions(), rule_options);
    if (!rules.ok()) {
      std::fprintf(stderr, "%s\n", rules.status().ToString().c_str());
      return 1;
    }
    std::printf("# association rules (min confidence %.2f)\n", options.rules);
    for (const auto& rule : *rules) {
      std::printf("%s\n", rule.ToString().c_str());
    }
  }
  return 0;
}

}  // namespace
}  // namespace privbasis

int main(int argc, char** argv) {
  auto options = privbasis::ParseArgs(argc, argv);
  if (!options.has_value()) {
    privbasis::PrintUsage(argv[0]);
    return 2;
  }
  return privbasis::RunCli(*options);
}
