// privbasis_cli: command-line front end for the library, built on the
// Engine facade (engine/engine.h).
//
// Reads a FIMI-format transaction file (or generates one of the paper's
// synthetic profiles) into a Dataset handle, runs one query through
// Engine::Run, and prints the released itemsets as TSV (items, noisy
// count, noisy frequency).
//
// Exit codes: 0 success, 1 runtime error (I/O, budget exhausted), 2 bad
// usage (flag parsing or QuerySpec validation).
//
// Examples:
//   privbasis_cli --input basket.dat --k 100 --epsilon 1.0
//   privbasis_cli --profile mushroom --scale 0.5 --k 50 --method tf --m 2
//   privbasis_cli --profile kosarak --scale 0.1 --threshold 0.02 --kcap 400
//   privbasis_cli --input basket.dat --k 50 --rules 0.6 --budget 2.0
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "data/dataset_stats.h"
#include "data/synthetic.h"
#include "engine/engine.h"

namespace privbasis {
namespace {

struct CliOptions {
  std::string input;      // FIMI file; empty = use profile
  std::string profile;    // retail|mushroom|pumsb-star|kosarak|aol
  double scale = 1.0;
  std::string method = "pb";  // pb | tf
  size_t k = 100;
  double epsilon = 1.0;
  uint64_t seed = 42;
  size_t m = 2;               // TF length cap
  double threshold = 0.0;     // >0: threshold mode (PB only)
  size_t k_cap = 500;         // threshold-mode candidate cap
  double rules = 0.0;         // >0: derive rules at this min confidence
  double budget = 0.0;        // >0: total dataset budget (default unlimited)
  double sample = 1.0;        // <1: subsampling amplification rate
  bool quiet = false;
};

void PrintUsage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--input FILE | --profile NAME [--scale S]]\n"
      "          [--method pb|tf] [--k K] [--epsilon E] [--seed SEED]\n"
      "          [--m M] [--threshold T --kcap CAP] [--rules MINCONF]\n"
      "          [--budget B] [--sample Q] [--quiet]\n"
      "\n"
      "  --input FILE     FIMI-format transactions (one per line)\n"
      "  --profile NAME   synthetic dataset: retail mushroom pumsb-star\n"
      "                   kosarak aol\n"
      "  --scale S        synthetic size multiplier (default 1.0)\n"
      "  --method pb|tf   PrivBasis (default) or the Bhaskar et al.\n"
      "                   truncated-frequency baseline\n"
      "  --k K            top-k to release (default 100)\n"
      "  --epsilon E      privacy budget of this query (default 1.0)\n"
      "  --m M            TF itemset-length cap (default 2)\n"
      "  --threshold T    release itemsets with noisy frequency >= T\n"
      "  --kcap CAP       candidate cap for threshold mode (default 500)\n"
      "  --rules C        also print association rules with confidence >= C\n"
      "  --budget B       total dataset budget the query is metered\n"
      "                   against (default: unlimited, spend still tracked)\n"
      "  --sample Q       run on a Poisson Q-subsample with the\n"
      "                   amplification-adjusted budget (PB only)\n"
      "  --quiet          suppress the dataset/stats banner\n",
      argv0);
}

std::optional<CliOptions> ParseArgs(int argc, char** argv) {
  CliOptions options;
  auto need_value = [&](int i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      return nullptr;
    }
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() { return need_value(i); };
    if (flag == "--help" || flag == "-h") return std::nullopt;
    if (flag == "--quiet") {
      options.quiet = true;
      continue;
    }
    const char* value = next();
    if (value == nullptr) return std::nullopt;
    ++i;
    if (flag == "--input") {
      options.input = value;
    } else if (flag == "--profile") {
      options.profile = value;
    } else if (flag == "--scale") {
      options.scale = std::strtod(value, nullptr);
    } else if (flag == "--method") {
      options.method = value;
    } else if (flag == "--k") {
      options.k = std::strtoull(value, nullptr, 10);
    } else if (flag == "--epsilon") {
      options.epsilon = std::strtod(value, nullptr);
    } else if (flag == "--seed") {
      options.seed = std::strtoull(value, nullptr, 10);
    } else if (flag == "--m") {
      options.m = std::strtoull(value, nullptr, 10);
    } else if (flag == "--threshold") {
      options.threshold = std::strtod(value, nullptr);
    } else if (flag == "--kcap") {
      options.k_cap = std::strtoull(value, nullptr, 10);
    } else if (flag == "--rules") {
      options.rules = std::strtod(value, nullptr);
    } else if (flag == "--budget") {
      // Fail closed: the one flag that CAPS privacy spending must never
      // be silently ignored on a bad value.
      char* end = nullptr;
      options.budget = std::strtod(value, &end);
      if (end == value || *end != '\0' || !(options.budget > 0.0)) {
        std::fprintf(stderr, "--budget must be a positive number, got %s\n",
                     value);
        return std::nullopt;
      }
    } else if (flag == "--sample") {
      options.sample = std::strtod(value, nullptr);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return std::nullopt;
    }
  }
  if (options.input.empty() && options.profile.empty()) {
    std::fprintf(stderr, "one of --input or --profile is required\n");
    return std::nullopt;
  }
  return options;
}

Result<std::shared_ptr<Dataset>> LoadDataset(const CliOptions& options) {
  Dataset::Options dataset_options;
  if (options.budget > 0.0) dataset_options.total_epsilon = options.budget;
  if (!options.input.empty()) {
    return Dataset::FromFimiFile(options.input, dataset_options);
  }
  SyntheticProfile profile;
  if (options.profile == "retail") {
    profile = SyntheticProfile::Retail(options.scale);
  } else if (options.profile == "mushroom") {
    profile = SyntheticProfile::Mushroom(options.scale);
  } else if (options.profile == "pumsb-star") {
    profile = SyntheticProfile::PumsbStar(options.scale);
  } else if (options.profile == "kosarak") {
    profile = SyntheticProfile::Kosarak(options.scale);
  } else if (options.profile == "aol") {
    profile = SyntheticProfile::Aol(options.scale);
  } else {
    return Status::InvalidArgument("unknown profile '" + options.profile +
                                   "'");
  }
  return Dataset::FromProfile(profile, options.seed, dataset_options);
}

Result<QuerySpec> BuildSpec(const CliOptions& options) {
  QuerySpec spec;
  spec.WithEpsilon(options.epsilon).WithSeed(options.seed).WithTopK(
      options.k);
  if (options.method == "pb") {
    spec.WithMethod(QueryMethod::kPrivBasis);
  } else if (options.method == "tf") {
    spec.WithMethod(QueryMethod::kTruncatedFrequency);
    spec.tf.m = options.m;
  } else {
    return Status::InvalidArgument("unknown method '" + options.method +
                                   "' (expected pb or tf)");
  }
  // Mode flags are applied regardless of method so that Validate() — not
  // a silent drop here — rejects unsupported combinations (e.g. tf +
  // --threshold, tf + --sample, out-of-range rates) with exit code 2.
  if (options.threshold != 0.0) {
    spec.WithThreshold(options.threshold, options.k_cap);
  }
  if (options.sample != 1.0) spec.WithAmplification(options.sample);
  if (options.rules != 0.0) spec.WithRules(options.rules);
  return spec;
}

int RunCli(const char* argv0, const CliOptions& options) {
  auto spec = BuildSpec(options);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    PrintUsage(argv0);
    return 2;
  }
  // Validate before paying for dataset generation/loading, so bad specs
  // fail fast with usage.
  if (Status valid = spec->Validate(); !valid.ok()) {
    std::fprintf(stderr, "%s\n", valid.ToString().c_str());
    PrintUsage(argv0);
    return 2;
  }

  auto dataset = LoadDataset(options);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  if (!options.quiet) {
    std::fprintf(stderr, "[privbasis_cli] %s\n",
                 (*dataset)->Stats().ToString().c_str());
  }
  const double n = static_cast<double>((*dataset)->db().NumTransactions());

  // The spec was fully validated above, so any error from here on is a
  // runtime problem (bad data, exhausted budget): exit 1, not 2.
  auto release = Engine::Run(*dataset, *spec);
  if (!release.ok()) {
    std::fprintf(stderr, "%s\n", release.status().ToString().c_str());
    return 1;
  }

  std::printf("# items\tnoisy_count\tnoisy_frequency\n");
  for (const auto& itemset : release->itemsets) {
    std::string items;
    for (size_t i = 0; i < itemset.items.size(); ++i) {
      if (i > 0) items += ' ';
      items += std::to_string(itemset.items[i]);
    }
    std::printf("%s\t%.2f\t%.6f\n", items.c_str(), itemset.noisy_count,
                itemset.noisy_count / n);
  }

  if (options.rules > 0.0) {
    std::printf("# association rules (min confidence %.2f)\n", options.rules);
    for (const auto& rule : release->rules) {
      std::printf("%s\n", rule.ToString().c_str());
    }
  }
  if (!options.quiet) {
    std::string remaining;
    if (options.budget > 0.0) {
      remaining = "; dataset budget remaining " +
                  std::to_string(release->epsilon_remaining);
    }
    std::fprintf(stderr,
                 "[privbasis_cli] epsilon spent %.6f of %.6f requested%s\n",
                 release->epsilon_spent, release->epsilon_requested,
                 remaining.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace privbasis

int main(int argc, char** argv) {
  auto options = privbasis::ParseArgs(argc, argv);
  if (!options.has_value()) {
    privbasis::PrintUsage(argv[0]);
    return 2;
  }
  return privbasis::RunCli(argv[0], *options);
}
