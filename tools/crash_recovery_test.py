#!/usr/bin/env python3
"""Crash-recovery harness for privbasis_server --state-dir.

Two modes, both exit 0 on pass / 1 on the first violated guarantee:

  kill9 (default) — start the server with a durable state dir, hammer it
  with concurrent queries while recording every ACKED commit (an HTTP
  200 whose body carries the query's spent ε), then SIGKILL the process
  mid-hammer. Restart on the same state dir and check the ledger's core
  promise: recovered spent ε >= the sum of acked commits (the WAL may
  legitimately over-charge for queries in flight at the crash — it must
  never under-charge), and an overdraft is still refused with 429.

      tools/crash_recovery_test.py --server-bin build/privbasis_server

  failpoint — drive the server's fault-injection sites through the
  PRIVBASIS_FAILPOINTS env var: ENOSPC on the WAL append must refuse the
  query (429) with the ledger untouched; a torn append must fail the
  query (500) and a restart must replay cleanly with no spend lost.

      tools/crash_recovery_test.py --mode failpoint

stdlib only; reuses the HTTP helpers from privbasis_client.py.
"""

import argparse
import json
import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from privbasis_client import ServerError, call  # noqa: E402

TRANSACTIONS = [[0, 1, 2], [0, 1], [1, 2], [2], [0, 2], [0, 1, 2]]


class Server:
    """A privbasis_server child on an ephemeral port."""

    def __init__(self, binary, state_dir, fsync="commit", env_extra=None):
        env = dict(os.environ)
        if env_extra:
            env.update(env_extra)
        self.proc = subprocess.Popen(
            [binary, "--state-dir", state_dir, "--fsync", fsync,
             "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env,
            text=True)
        # The binary prints exactly one "listening on http://host:port"
        # line once recovery finished and the preloads ran.
        deadline = time.monotonic() + 30
        self.url = None
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                break
            match = re.search(r"listening on (http://\S+)", line)
            if match:
                self.url = match.group(1)
                break
        if self.url is None:
            self.proc.kill()
            raise SystemExit("server never printed its listen address")

    def kill9(self):
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait(timeout=30)

    def stop(self):
        self.proc.send_signal(signal.SIGTERM)
        try:
            self.proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            self.proc.kill()


def check(condition, what):
    if not condition:
        raise SystemExit(f"FAIL: {what}")
    print(f"  ok: {what}")


def register(url, budget):
    status, body = call(url, "POST", "/v1/datasets",
                        {"transactions": TRANSACTIONS, "budget": budget})
    check(status == 201, f"register dataset (budget {budget})")
    return body["dataset"]


def read_budget(url, ds):
    _, body = call(url, "GET", f"/v1/datasets/{ds}/budget")
    return body


def run_kill9(binary, state_dir, hammer_threads, hammer_seconds):
    print(f"[kill9] state dir {state_dir}")
    server = Server(binary, state_dir)
    ds = register(server.url, budget=1000.0)

    # Hammer: every thread fires small queries and records the spend the
    # server ACKNOWLEDGED (response received in full). Anything in
    # flight when the SIGKILL lands is allowed to over-charge on replay.
    acked = [0.0] * hammer_threads
    stop = threading.Event()

    def hammer(i):
        seed = 1000 * i
        while not stop.is_set():
            seed += 1
            try:
                status, body = call(server.url, "POST", "/v1/query",
                                    {"dataset": ds, "k": 5,
                                     "epsilon": 0.01, "seed": seed},
                                    timeout=10)
            except (ServerError, OSError):
                return  # refused or killed under us — stop counting
            if status == 200:
                acked[i] += body["budget"]["spent"]

    threads = [threading.Thread(target=hammer, args=(i,))
               for i in range(hammer_threads)]
    for t in threads:
        t.start()
    time.sleep(hammer_seconds)
    server.kill9()  # no shutdown path runs: page cache + fsync only
    stop.set()
    for t in threads:
        t.join()
    acked_total = sum(acked)
    check(acked_total > 0.0, f"hammer acked ε {acked_total:.4f} pre-kill")

    server = Server(binary, state_dir)
    budget = read_budget(server.url, ds)
    print(f"  recovered spent {budget['spent']:.4f} "
          f"(acked {acked_total:.4f})")
    check(budget["spent"] >= acked_total - 1e-9,
          "recovered spent >= sum of acked commits (never under-count)")
    check(budget["reserved"] == 0.0, "no reservations survive a crash")

    # The recovered ledger still enforces the total.
    try:
        call(server.url, "POST", "/v1/query",
             {"dataset": ds, "k": 5, "epsilon": 5000.0, "seed": 1})
        raise SystemExit("FAIL: overdraft was not refused after recovery")
    except ServerError as err:
        check(err.status == 429, f"overdraft refused ({err.status})")
    # And normal service continues.
    status, _ = call(server.url, "POST", "/v1/query",
                     {"dataset": ds, "k": 5, "epsilon": 0.01, "seed": 2})
    check(status == 200, "queries serve after recovery")
    server.stop()
    print("[kill9] PASS")


def run_failpoint(binary, state_dir):
    print(f"[failpoint] state dir {state_dir}")
    server = Server(binary, state_dir)
    ds = register(server.url, budget=10.0)
    status, _ = call(server.url, "POST", "/v1/query",
                     {"dataset": ds, "k": 5, "epsilon": 0.5, "seed": 1})
    check(status == 200, "baseline query")
    spent_clean = read_budget(server.url, ds)["spent"]
    server.stop()

    # Disk full on every WAL append: the query must be REFUSED with 429
    # and the ledger must not move — never serve a release whose spend
    # could not be made durable.
    server = Server(binary, state_dir,
                    env_extra={"PRIVBASIS_FAILPOINTS":
                               "wal_append=error:ENOSPC"})
    try:
        call(server.url, "POST", "/v1/query",
             {"dataset": ds, "k": 5, "epsilon": 0.5, "seed": 2})
        raise SystemExit("FAIL: query served despite WAL ENOSPC")
    except ServerError as err:
        check(err.status == 429, f"ENOSPC on WAL append -> 429 "
                                 f"({err.status})")
    budget = read_budget(server.url, ds)
    check(budget["spent"] == spent_clean,
          "ledger untouched by the refused query")
    server.stop()

    # A torn append (12 bytes land, then EIO) fails the query with 500;
    # the server self-heals the tail, and a restart replays cleanly with
    # the pre-fault spend intact.
    server = Server(binary, state_dir,
                    env_extra={"PRIVBASIS_FAILPOINTS":
                               "wal_append=torn:12"})
    try:
        call(server.url, "POST", "/v1/query",
             {"dataset": ds, "k": 5, "epsilon": 0.5, "seed": 3})
        raise SystemExit("FAIL: query served despite torn WAL append")
    except ServerError as err:
        check(err.status == 500, f"torn WAL append -> 500 ({err.status})")
    server.kill9()  # crash on top of the torn write

    server = Server(binary, state_dir)
    budget = read_budget(server.url, ds)
    check(budget["spent"] >= spent_clean - 1e-9,
          "recovery after torn write keeps the committed spend")
    status, _ = call(server.url, "POST", "/v1/query",
                     {"dataset": ds, "k": 5, "epsilon": 0.5, "seed": 4})
    check(status == 200, "queries serve after torn-write recovery")
    server.stop()
    print("[failpoint] PASS")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--server-bin", default="build/privbasis_server")
    parser.add_argument("--mode", choices=["kill9", "failpoint"],
                        default="kill9")
    parser.add_argument("--state-dir",
                        help="reuse this dir (default: fresh temp dir; "
                             "kept on failure for post-mortem)")
    parser.add_argument("--threads", type=int, default=16)
    parser.add_argument("--hammer-seconds", type=float, default=2.0)
    args = parser.parse_args()

    if not os.path.exists(args.server_bin):
        raise SystemExit(f"server binary not found: {args.server_bin}")
    state_dir = args.state_dir or tempfile.mkdtemp(prefix="privbasis_crash_")
    if args.mode == "kill9":
        run_kill9(args.server_bin, state_dir, args.threads,
                  args.hammer_seconds)
    else:
        run_failpoint(args.server_bin, state_dir)
    # Reached only on success; a SystemExit above leaves the state dir
    # behind as the post-mortem artifact (CI uploads it).
    if args.state_dir is None:
        shutil.rmtree(state_dir, ignore_errors=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
