#!/usr/bin/env python3
"""Perf trajectory scraper for the PrivBasis bench suite.

Runs ``bench_smoke`` (and optionally other bench binaries), scrapes the
``PRIVBASIS_JSON`` lines out of their stdout, aggregates min-of-N wall
timings per (phase, tags) key, and writes ``BENCH_<rev>.json`` into the
trajectory directory. With ``--compare`` it diffs the fresh numbers
against a committed baseline and exits nonzero on a regression beyond
the threshold — the CI perf gate.

Usage:
    tools/perf_trajectory.py [--build-dir build] [--out-dir bench/trajectory]
                             [--rev <id>] [--smoke]
                             [--compare bench/trajectory/BENCH_baseline.json]
                             [--threshold 0.25] [--extra-bench BIN ...]

``--smoke`` shrinks the workload (PRIVBASIS_SMOKE_SCALE=0.3, min-of-7
reps) so the gate finishes in seconds; absolute numbers from smoke runs
are only comparable to other smoke runs.
"""

import argparse
import json
import os
import subprocess
import sys

PREFIX = "PRIVBASIS_JSON "
# Fields that describe the measurement (or the machine it ran on) rather
# than identify the phase: "threads" varies across runners, so it stays
# out of the entry key to keep baselines comparable.
VALUE_FIELDS = {"seconds", "min_ms", "mean_ms", "reps", "threads"}


def parse_lines(text):
    """Yields dicts for every PRIVBASIS_JSON line in ``text``."""
    for line in text.splitlines():
        line = line.strip()
        if not line.startswith(PREFIX):
            continue
        payload = line[len(PREFIX):]
        try:
            yield json.loads(payload)
        except json.JSONDecodeError as err:
            raise SystemExit(
                f"malformed PRIVBASIS_JSON line (scraper bug or emitter "
                f"regression): {payload!r}: {err}")


def entry_key(record):
    """Stable identity of a measurement: phase + identifying tags."""
    parts = [f"phase={record.get('phase', '?')}"]
    for key in sorted(record):
        if key in VALUE_FIELDS or key == "phase":
            continue
        parts.append(f"{key}={record[key]}")
    return " ".join(parts)


def run_bench(binary, env_overrides):
    env = dict(os.environ)
    env.update(env_overrides)
    print(f"[perf_trajectory] running {binary}", flush=True)
    proc = subprocess.run([binary], capture_output=True, text=True, env=env)
    sys.stdout.write(proc.stdout)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"{binary} exited with {proc.returncode}")
    return proc.stdout


def collect(binaries, env_overrides):
    entries = {}
    for binary in binaries:
        for record in parse_lines(run_bench(binary, env_overrides)):
            key = entry_key(record)
            prev = entries.get(key)
            # Keep the best (minimum) timing seen for a key across
            # binaries/repeats; reps accumulate for transparency.
            if prev is None or record.get("min_ms", float("inf")) < prev.get(
                    "min_ms", float("inf")):
                merged = dict(record)
                if prev is not None:
                    merged["reps"] = int(prev.get("reps", 0)) + int(
                        record.get("reps", 0))
                entries[key] = merged
            else:
                prev["reps"] = int(prev.get("reps", 0)) + int(
                    record.get("reps", 0))
    return entries


def git_rev(repo_root):
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], capture_output=True,
            text=True, cwd=repo_root, check=True)
        return out.stdout.strip()
    except (subprocess.CalledProcessError, FileNotFoundError):
        return "unknown"


def compare(entries, baseline_path, threshold, smoke, min_ms_floor=1.0):
    with open(baseline_path) as f:
        baseline = json.load(f)
    if bool(baseline.get("smoke")) != bool(smoke):
        print(f"\n[perf_trajectory] SKIPPING compare: baseline "
              f"{baseline_path} was recorded with smoke="
              f"{baseline.get('smoke')} but this run has smoke={smoke}; "
              f"timings are not comparable across workload scales")
        return True
    base_entries = baseline.get("entries", {})
    regressions = []
    missing = []
    print(f"\n[perf_trajectory] comparing against {baseline_path} "
          f"(threshold {threshold:.0%})")
    for key in sorted(base_entries):
        if key not in entries:
            # A vanished key means the gate would pass vacuously (renamed
            # phase, crashed emitter, missing SIMD level) — treat it as a
            # failure so silent coverage loss cannot slip through.
            print(f"  MISSING  {key} (baseline only — phase removed?)")
            missing.append(key)
            continue
        old = base_entries[key].get("min_ms")
        new = entries[key].get("min_ms")
        if not old or new is None:
            continue
        ratio = new / old
        marker = "ok "
        if ratio > 1.0 + threshold:
            # Entries below the floor are scheduler-jitter territory
            # (tens of microseconds); report them but never gate on them.
            if old < min_ms_floor:
                marker = "noi"
            else:
                marker = "REG"
                regressions.append((key, old, new, ratio))
        print(f"  {marker}  {key}: {old:.3f} -> {new:.3f} ms "
              f"({ratio - 1.0:+.1%} vs baseline)")
    for key in sorted(set(entries) - set(base_entries)):
        print(f"  NEW      {key}: {entries[key].get('min_ms', 0):.3f} ms")
    if regressions:
        print(f"\n[perf_trajectory] {len(regressions)} regression(s) beyond "
              f"{threshold:.0%}:")
        for key, old, new, ratio in regressions:
            print(f"  {key}: {old:.3f} -> {new:.3f} ms ({ratio:.2f}x)")
    if missing:
        print(f"\n[perf_trajectory] {len(missing)} baseline entr"
              f"{'y' if len(missing) == 1 else 'ies'} missing from this run "
              f"— update the baseline if the phase was intentionally "
              f"removed or renamed")
    if regressions or missing:
        return False
    print("[perf_trajectory] no regressions")
    return True


def main():
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default=os.path.join(repo_root, "build"))
    parser.add_argument("--out-dir",
                        default=os.path.join(repo_root, "bench", "trajectory"))
    parser.add_argument("--rev", default=None,
                        help="trajectory id (default: git short rev)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload for the CI gate")
    parser.add_argument("--compare", default=None,
                        help="baseline BENCH_*.json to diff against")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed min_ms regression ratio (default 0.25)")
    parser.add_argument("--min-ms-floor", type=float, default=1.0,
                        help="baseline entries faster than this many ms are "
                             "reported but not gated (sub-ms min-of-N "
                             "timings are scheduler-jitter territory)")
    parser.add_argument("--extra-bench", nargs="*", default=[],
                        help="additional bench binaries to scrape")
    args = parser.parse_args()

    smoke_bin = os.path.join(args.build_dir, "bench_smoke")
    if not os.path.exists(smoke_bin):
        raise SystemExit(f"{smoke_bin} not found — build the bench_smoke "
                         f"target first")
    binaries = [smoke_bin] + args.extra_bench

    env_overrides = {}
    if args.smoke:
        env_overrides["PRIVBASIS_SMOKE_SCALE"] = "0.3"
        env_overrides["PRIVBASIS_SMOKE_REPS"] = "7"

    entries = collect(binaries, env_overrides)
    if not entries:
        raise SystemExit("no PRIVBASIS_JSON lines scraped")

    rev = args.rev or git_rev(repo_root)
    doc = {
        "rev": rev,
        "smoke": args.smoke,
        "entries": entries,
    }
    os.makedirs(args.out_dir, exist_ok=True)
    out_path = os.path.join(args.out_dir, f"BENCH_{rev}.json")
    with open(out_path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"[perf_trajectory] wrote {out_path} ({len(entries)} entries)")

    if args.compare:
        if not compare(entries, args.compare, args.threshold, args.smoke,
                       args.min_ms_floor):
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
