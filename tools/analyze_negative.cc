// Negative test for the thread-safety analysis: this file reads a
// PB_GUARDED_BY field WITHOUT taking its lock, so building this target
// under PRIVBASIS_ANALYZE (clang, -Wthread-safety -Werror=thread-safety)
// MUST fail. The static-analysis CI job builds it and asserts the
// failure — if this file ever compiles under the analyze config, the
// annotations have silently stopped being checked (wrong compiler,
// macros defined away, flag dropped) and the job turns red.
//
// Never part of `all`; see the analyze_negative target in CMakeLists.txt.
#include <cstdio>

#include "common/annotations.h"

namespace {

class Counter {
 public:
  void Increment() {
    privbasis::MutexLock lock(mu_);
    ++value_;
  }

  // BUG (deliberate): reads value_ without holding mu_. The analysis
  // must reject this with -Werror=thread-safety.
  long Get() const { return value_; }

 private:
  mutable privbasis::Mutex mu_;
  long value_ PB_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  std::printf("%ld\n", counter.Get());
  return 0;
}
