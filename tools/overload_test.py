#!/usr/bin/env python3
"""Overload harness for privbasis_server admission control.

Boots the server binary with a small worker pool, a bounded queue, and a
latency SLO, slows every scan deterministically through the failpoint
env hook, then drives a multiple of the server's standing capacity at it
from concurrent keep-alive clients. Exit 0 on pass, 1 on the first
violated guarantee:

  * every refusal is an IMMEDIATE 429/503 carrying Retry-After — no
    request waits its deadline out just to learn the server was full;
  * admitted queries finish within the SLO (p99 over the storm);
  * accepted ε sums exactly to the server's budget ledger — sheds and
    cancellations leave no trace;
  * a client deadline expiring mid-scan answers 408 and charges exactly
    the full reservation (fail-closed);
  * /v1/stats counters agree with the client-side tally.

    tools/overload_test.py --server-bin build/privbasis_server

stdlib only; reuses the HTTP helpers from privbasis_client.py.
"""

import argparse
import os
import re
import socket
import subprocess
import sys
import threading
import time
import urllib.parse

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import privbasis_client  # noqa: E402
from privbasis_client import ServerError, call, wait_ready  # noqa: E402

TRANSACTIONS = [[0, 1, 2], [0, 1], [1, 2], [2], [0, 2], [0, 1, 2]]

# Every BasisFreq scan stalls this long via the failpoint hook: queries
# are deterministically slow, so the storm reliably outruns capacity.
SCAN_SLEEP_MS = 250


class Server:
    """A privbasis_server child on an ephemeral port, scans slowed."""

    def __init__(self, binary, threads, slo_ms, max_queue, log_path):
        env = dict(os.environ)
        env["PRIVBASIS_FAILPOINTS"] = f"basis_freq_chunk=sleep:{SCAN_SLEEP_MS}"
        self.log = open(log_path, "w+")
        self.proc = subprocess.Popen(
            [binary, "--port", "0", "--threads", str(threads),
             "--slo-ms", str(slo_ms), "--max-queue", str(max_queue)],
            stdout=self.log, stderr=subprocess.STDOUT, env=env, text=True)
        deadline = time.monotonic() + 30
        self.url = None
        while time.monotonic() < deadline and self.url is None:
            time.sleep(0.05)
            self.log.flush()
            with open(log_path) as probe:
                match = re.search(r"listening on (http://\S+)",
                                  probe.read())
                if match:
                    self.url = match.group(1)
        if self.url is None:
            self.proc.kill()
            raise SystemExit("server never printed its listen address")

    def stop(self):
        self.proc.terminate()
        try:
            self.proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            self.proc.kill()
        self.log.close()


def check(condition, what):
    if not condition:
        raise SystemExit(f"FAIL: {what}")
    print(f"  ok: {what}")


def read_spent(url, ds):
    _, body = call(url, "GET", f"/v1/datasets/{ds}/budget")
    return body["spent"]


def run(args):
    server = Server(args.server_bin, args.threads, args.slo_ms,
                    args.max_queue, args.log)
    try:
        wait_ready(server.url)
        status, body = call(server.url, "POST", "/v1/datasets",
                            {"transactions": TRANSACTIONS,
                             "budget": 1000.0})
        check(status == 201, "register dataset")
        ds = body["dataset"]

        # The storm: clients >> workers + queue slots, mixed cheap (k=5)
        # and expensive (k=40) specs, every client's first connection
        # arriving at once (barrier). Refusals must be immediate.
        capacity = args.threads + args.max_queue
        clients = args.clients or 3 * capacity
        print(f"[storm] {clients} clients x {args.rounds} rounds against "
              f"{args.threads} workers + {args.max_queue} queue slots, "
              f"scans slowed {SCAN_SLEEP_MS} ms")
        outcomes = [[] for _ in range(clients)]
        barrier = threading.Barrier(clients)

        def client(i):
            barrier.wait()
            for r in range(args.rounds):
                seed = 10_000 + i * 100 + r
                k = 5 if (i + r) % 2 == 0 else 40
                started = time.monotonic()
                try:
                    _, release = call(server.url, "POST", "/v1/query",
                                      {"dataset": ds, "k": k,
                                       "epsilon": 0.01, "seed": seed},
                                      timeout=60)
                    outcomes[i].append(
                        ("ok", 200, time.monotonic() - started,
                         release["budget"]["spent"], True))
                except ServerError as err:
                    outcomes[i].append(
                        ("refused", err.status,
                         time.monotonic() - started, 0.0,
                         err.retry_after is not None))

        workers = [threading.Thread(target=client, args=(i,))
                   for i in range(clients)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()

        completed, refused = [], []
        for per_client in outcomes:
            for kind, status, elapsed, spent, has_retry_after in per_client:
                if kind == "ok":
                    completed.append((elapsed, spent))
                else:
                    refused.append((status, elapsed, has_retry_after))
        total = sum(len(o) for o in outcomes)
        print(f"[storm] {len(completed)} completed, "
              f"{len(refused)} refused of {total}")

        check(total == clients * args.rounds, "every request got an answer")
        check(len(refused) > 0,
              "overload produced sheds (capacity was actually exceeded)")
        check(len(completed) >= args.threads,
              "the workers kept serving through the storm")
        bad_status = [s for s, _, _ in refused if s not in (429, 503)]
        check(not bad_status,
              f"every refusal is 429/503 (bad: {bad_status})")
        check(all(h for _, _, h in refused),
              "every refusal carries Retry-After")
        slowest_refusal = max(e for _, e, _ in refused)
        check(slowest_refusal < 2.0,
              f"refusals immediate (slowest "
              f"{slowest_refusal * 1000:.0f} ms)")
        latencies = sorted(elapsed for elapsed, _ in completed)
        p99 = latencies[int(0.99 * (len(latencies) - 1))]
        check(p99 <= args.slo_ms / 1000.0,
              f"admitted p99 {p99 * 1000:.0f} ms within the "
              f"{args.slo_ms} ms SLO")

        # ε conservation: the ledger is exactly the acknowledged spends.
        acked = sum(spent for _, spent in completed)
        spent = read_spent(server.url, ds)
        check(abs(spent - acked) < 1e-9,
              f"ledger ε ({spent:.6f}) equals acked ε ({acked:.6f})")

        # Deadline propagation over the wire: the scan stall outlives a
        # 100 ms client deadline → 408, and the aborted lease charges
        # its FULL reservation (fail-closed), never a partial.
        before = spent
        try:
            call(server.url, "POST", "/v1/query",
                 {"dataset": ds, "k": 5, "epsilon": 0.5, "seed": 1,
                  "deadline_ms": 100})
            raise SystemExit("FAIL: deadline query unexpectedly succeeded")
        except ServerError as err:
            check(err.status == 408, f"mid-scan deadline is 408 "
                                     f"(got {err.status})")
        after = read_spent(server.url, ds)
        check(abs(after - before - 0.5) < 1e-9,
              "cancelled query charged exactly its full reservation")

        # The server's own counters agree with the client-side tally.
        _, stats = call(server.url, "GET", "/v1/stats")
        shed_connections = sum(1 for s, _, _ in refused if s == 503)
        shed_queries = sum(1 for s, _, _ in refused if s == 429)
        check(stats["queries"]["completed"] == len(completed),
              "stats: completed matches")
        check(stats["queries"]["cancelled"] == 1,
              "stats: the deadline cancellation was counted")
        check(stats["connections"]["shed"] == shed_connections,
              "stats: connection sheds match")
        check(stats["queries"]["shed_predicted"] +
              stats["queries"]["shed_queue"] == shed_queries,
              "stats: query sheds match")

        # Parked keep-alive storm: under thread-per-connection, every
        # idle socket pinned a worker, so capacity+1 parked clients
        # starved the pool outright. The epoll loop prices an idle
        # connection at one fd — with 4x capacity parked (half silent,
        # half stalled mid-request-line, so neither ever yields a
        # complete request), a live query must still reach a worker and
        # finish promptly.
        parts = urllib.parse.urlsplit(server.url)
        parked = []
        for i in range(4 * capacity):
            sock = socket.create_connection(
                (parts.hostname, parts.port), timeout=10)
            if i % 2 == 1:
                sock.sendall(b"POST /v1/query HT")
            parked.append(sock)
        started = time.monotonic()
        status, _ = call(server.url, "POST", "/v1/query",
                         {"dataset": ds, "k": 5, "epsilon": 0.01,
                          "seed": 424242}, timeout=30)
        parked_elapsed = time.monotonic() - started
        check(status == 200,
              f"live query served past {len(parked)} parked connections")
        check(parked_elapsed < args.slo_ms / 1000.0,
              f"parked connections did not starve workers "
              f"({parked_elapsed * 1000:.0f} ms)")
        for sock in parked:
            sock.close()
        print("[overload] PASS")
        return 0
    finally:
        server.stop()


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--server-bin", required=True)
    parser.add_argument("--threads", type=int, default=2,
                        help="server worker threads")
    parser.add_argument("--max-queue", type=int, default=2,
                        help="server bounded queue depth")
    parser.add_argument("--slo-ms", type=int, default=10_000,
                        help="server admission SLO")
    parser.add_argument("--clients", type=int, default=0,
                        help="storm clients (default 3x capacity)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="queries per client")
    parser.add_argument("--log", default="/tmp/privbasis_overload.log",
                        help="server stdout/stderr capture")
    args = parser.parse_args()
    # Surface every refusal instead of sleeping on Retry-After — this
    # harness asserts on the refusals themselves.
    privbasis_client.RETRY_AFTER_LIMIT = 0
    try:
        return run(args)
    except SystemExit as err:
        if err.code not in (0, None):
            try:
                with open(args.log) as log:
                    sys.stderr.write("---- server log ----\n" + log.read())
            except OSError:
                pass
        raise


if __name__ == "__main__":
    sys.exit(main())
